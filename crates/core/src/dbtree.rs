//! The delay-balanced tree (§4.3, step 1).
//!
//! An annotated binary tree over f-intervals: the root holds the full grid
//! `D_f`; a node at level `ℓ` with `T(I(w)) ≥ τ_ℓ = τ / 2^{ℓ(1−1/α)}` is
//! split at the Algorithm 1 point `β(w)` into `[a, pred(β)]` and
//! `[succ(β), b]` (the split point itself is handled at the node, cf.
//! Algorithm 2 line 11); nodes below the threshold are leaves. Lemma 4
//! bounds the depth by `O(log T)` because `T` halves at every level while
//! the threshold decays strictly slower.

use crate::cost::CostEstimator;
use crate::fbox::{lex_cmp_ranks, pred, succ, FInterval};
use crate::split::{split_interval, split_interval_midpoint};
use cqc_common::heap::HeapSize;
use cqc_common::util::approx_ge;
use std::cmp::Ordering;

/// Hard cap on tree depth; reaching it indicates a bug in the halving
/// invariant (Prop. 8), not a legitimate instance.
const MAX_LEVEL: u16 = 512;

/// One node of the delay-balanced tree.
#[derive(Debug, Clone)]
pub struct TreeNode {
    /// The node's f-interval (closed, rank space).
    pub interval: FInterval,
    /// Algorithm 1 split point; `None` for leaves.
    pub beta: Option<Vec<usize>>,
    /// Left child (covers `[lo, pred(β)]`).
    pub left: Option<u32>,
    /// Right child (covers `[succ(β), hi]`).
    pub right: Option<u32>,
    /// Depth (root = 0).
    pub level: u16,
    /// `T(I(w))` at construction time (kept for invariant checks and
    /// statistics).
    pub t_value: f64,
}

/// The delay-balanced tree.
#[derive(Debug, Clone)]
pub struct DelayBalancedTree {
    /// Nodes; index 0 is the root.
    pub nodes: Vec<TreeNode>,
    /// The delay knob τ.
    pub tau: f64,
    /// The slack α of the cover.
    pub alpha: f64,
}

/// `τ_ℓ = τ / 2^{ℓ(1−1/α)}`.
pub fn tau_level(tau: f64, alpha: f64, level: u16) -> f64 {
    tau / 2f64.powf(f64::from(level) * (1.0 - 1.0 / alpha))
}

/// Which split-point rule the tree uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Splitter {
    /// Algorithm 1: cost-balanced splits with the Prop. 8 `T/2` guarantee.
    #[default]
    Balanced,
    /// Ablation baseline: grid midpoints (no balance guarantee).
    Midpoint,
}

impl DelayBalancedTree {
    /// Builds the tree for the given cost oracle and threshold `τ ≥ 1`.
    ///
    /// Returns `None` when some free variable has an empty active domain
    /// (the view result is empty for every access request).
    ///
    /// # Panics
    ///
    /// Panics if `tau < 1`.
    pub fn build(est: &CostEstimator, tau: f64) -> Option<DelayBalancedTree> {
        DelayBalancedTree::build_with_splitter(est, tau, Splitter::Balanced)
    }

    /// Builds the tree with an explicit split rule (the `Midpoint` variant
    /// exists for the EXP-11 ablation; production code uses
    /// [`DelayBalancedTree::build`]).
    ///
    /// With the midpoint rule the `T`-halving guarantee is lost, so the
    /// construction additionally stops when an interval becomes a unit —
    /// termination then follows from the strict shrinkage of intervals.
    pub fn build_with_splitter(
        est: &CostEstimator,
        tau: f64,
        splitter: Splitter,
    ) -> Option<DelayBalancedTree> {
        assert!(tau >= 1.0, "τ must be at least 1");
        let alpha = est.alpha();
        let sizes = est.sizes();
        let root_interval = FInterval::full(&sizes)?;

        let mut nodes: Vec<TreeNode> = Vec::new();
        // Work stack entries: (interval, level, parent slot), where the
        // slot is `(parent node, is_left_child)`.
        type Slot = Option<(u32, bool)>;
        let mut stack: Vec<(FInterval, u16, Slot)> = vec![(root_interval, 0, None)];

        while let Some((interval, level, slot)) = stack.pop() {
            assert!(level < MAX_LEVEL, "delay-balanced tree too deep (bug)");
            let t = est.t_interval(&interval, &sizes);
            let idx = nodes.len() as u32;
            if let Some((parent, is_left)) = slot {
                let p = &mut nodes[parent as usize];
                if is_left {
                    p.left = Some(idx);
                } else {
                    p.right = Some(idx);
                }
            }
            let threshold = tau_level(tau, alpha, level);
            // Leaf when T(I(w)) < τ_ℓ (zero-cost intervals are always
            // leaves; they cannot be split).
            if t <= 0.0 || !approx_ge(t, threshold) {
                nodes.push(TreeNode {
                    interval,
                    beta: None,
                    left: None,
                    right: None,
                    level,
                    t_value: t,
                });
                continue;
            }
            let beta = match splitter {
                Splitter::Balanced => split_interval(est, &sizes, &interval),
                Splitter::Midpoint => split_interval_midpoint(est, &sizes, &interval),
            };
            let left =
                pred(&beta, &sizes).filter(|p| lex_cmp_ranks(&interval.lo, p) != Ordering::Greater);
            let right =
                succ(&beta, &sizes).filter(|s| lex_cmp_ranks(s, &interval.hi) != Ordering::Greater);
            nodes.push(TreeNode {
                interval: interval.clone(),
                beta: Some(beta),
                left: None,
                right: None,
                level,
                t_value: t,
            });
            // Push right first so the left child is processed (and thus
            // numbered) first — purely cosmetic, but it makes node ids
            // follow the in-order layout of Figure 3.
            if let Some(hi_lo) = right {
                let child = FInterval {
                    lo: hi_lo,
                    hi: interval.hi.clone(),
                };
                stack.push((child, level + 1, Some((idx, false))));
            }
            if let Some(lo_hi) = left {
                let child = FInterval {
                    lo: interval.lo.clone(),
                    hi: lo_hi,
                };
                stack.push((child, level + 1, Some((idx, true))));
            }
        }

        Some(DelayBalancedTree { nodes, tau, alpha })
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when the tree has no nodes (never produced by `build`).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The root node id.
    pub fn root(&self) -> u32 {
        0
    }

    /// The level threshold for a node.
    pub fn threshold_of(&self, node: u32) -> f64 {
        tau_level(self.tau, self.alpha, self.nodes[node as usize].level)
    }

    /// Maximum node level.
    pub fn depth(&self) -> u16 {
        self.nodes.iter().map(|n| n.level).max().unwrap_or(0)
    }
}

impl HeapSize for DelayBalancedTree {
    fn heap_bytes(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| {
                n.interval.lo.heap_bytes()
                    + n.interval.hi.heap_bytes()
                    + n.beta.as_ref().map_or(0, |b| b.heap_bytes())
                    + std::mem::size_of::<TreeNode>()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::tests::running_estimator;

    /// Figure 3: the delay-balanced tree of the running example at τ = 4
    /// has exactly five nodes with the depicted intervals and split points.
    #[test]
    fn figure_3_tree_shape() {
        let est = running_estimator();
        let tree = DelayBalancedTree::build(&est, 4.0).unwrap();
        assert_eq!(tree.len(), 5);

        let root = &tree.nodes[0];
        assert_eq!(est.ranks_to_values(&root.interval.lo), vec![1, 1, 1]);
        assert_eq!(est.ranks_to_values(&root.interval.hi), vec![2, 2, 2]);
        assert_eq!(
            est.ranks_to_values(root.beta.as_ref().unwrap()),
            vec![1, 1, 2]
        );
        assert!((root.t_value - 10.5605).abs() < 1e-3);

        // Left child r_l = [⟨1,1,1⟩, ⟨1,1,1⟩], a leaf.
        let rl = &tree.nodes[root.left.unwrap() as usize];
        assert_eq!(est.ranks_to_values(&rl.interval.lo), vec![1, 1, 1]);
        assert_eq!(est.ranks_to_values(&rl.interval.hi), vec![1, 1, 1]);
        assert!(rl.beta.is_none());
        assert!((rl.t_value - 6.0f64.sqrt()).abs() < 1e-9);

        // Right child r_r = [⟨1,2,1⟩, ⟨2,2,2⟩] with β = (1,2,2).
        let rr = &tree.nodes[root.right.unwrap() as usize];
        assert_eq!(est.ranks_to_values(&rr.interval.lo), vec![1, 2, 1]);
        assert_eq!(est.ranks_to_values(&rr.interval.hi), vec![2, 2, 2]);
        assert_eq!(
            est.ranks_to_values(rr.beta.as_ref().unwrap()),
            vec![1, 2, 2]
        );

        // Its children r_rl = [⟨1,2,1⟩,⟨1,2,1⟩] and r_rr = [⟨2,1,1⟩,⟨2,2,2⟩]
        // are leaves (T < τ_2 = 2).
        let rrl = &tree.nodes[rr.left.unwrap() as usize];
        assert_eq!(est.ranks_to_values(&rrl.interval.lo), vec![1, 2, 1]);
        assert_eq!(est.ranks_to_values(&rrl.interval.hi), vec![1, 2, 1]);
        assert!(rrl.beta.is_none());
        let rrr = &tree.nodes[rr.right.unwrap() as usize];
        assert_eq!(est.ranks_to_values(&rrr.interval.lo), vec![2, 1, 1]);
        assert_eq!(est.ranks_to_values(&rrr.interval.hi), vec![2, 2, 2]);
        assert!(rrr.beta.is_none());
    }

    /// Lemma 4 item 1 on the running example: every child's T is at most
    /// half its parent's.
    #[test]
    fn t_halves_along_edges() {
        let est = running_estimator();
        for tau in [1.0, 2.0, 4.0, 8.0] {
            let tree = DelayBalancedTree::build(&est, tau).unwrap();
            for node in &tree.nodes {
                for child in [node.left, node.right].into_iter().flatten() {
                    let ct = tree.nodes[child as usize].t_value;
                    assert!(
                        ct <= node.t_value / 2.0 + 1e-9,
                        "child T {ct} > parent T {} / 2 (tau {tau})",
                        node.t_value
                    );
                }
            }
        }
    }

    /// Threshold bookkeeping: internal nodes satisfy T ≥ τ_ℓ, leaves with
    /// children slots empty satisfy T < τ_ℓ or are unsplittable points.
    #[test]
    fn threshold_invariants() {
        let est = running_estimator();
        let tree = DelayBalancedTree::build(&est, 4.0).unwrap();
        for (i, node) in tree.nodes.iter().enumerate() {
            let thr = tree.threshold_of(i as u32);
            if node.beta.is_some() {
                assert!(node.t_value >= thr - 1e-9);
            } else {
                assert!(node.t_value < thr);
            }
        }
    }

    /// τ_ℓ: at α = 2 the threshold decays by √2 per level; at α = 1 it is
    /// constant.
    #[test]
    fn tau_level_formula() {
        assert!((tau_level(4.0, 2.0, 0) - 4.0).abs() < 1e-12);
        assert!((tau_level(4.0, 2.0, 1) - 4.0 / 2f64.sqrt()).abs() < 1e-12);
        assert!((tau_level(4.0, 2.0, 2) - 2.0).abs() < 1e-12);
        for l in 0..10 {
            assert!((tau_level(7.0, 1.0, l) - 7.0).abs() < 1e-12);
        }
    }

    /// A huge τ makes the root a leaf (the structure degenerates to direct
    /// evaluation).
    #[test]
    fn huge_tau_single_leaf() {
        let est = running_estimator();
        let tree = DelayBalancedTree::build(&est, 1e6).unwrap();
        assert_eq!(tree.len(), 1);
        assert!(tree.nodes[0].beta.is_none());
    }

    /// τ = 1 with α = 2: thresholds decay, the tree splits down to points.
    #[test]
    fn tau_one_fully_splits() {
        let est = running_estimator();
        let tree = DelayBalancedTree::build(&est, 1.0).unwrap();
        assert!(tree.len() >= 5);
        assert!(tree.depth() >= 2);
        // Every leaf has T < its threshold.
        for (i, n) in tree.nodes.iter().enumerate() {
            if n.beta.is_none() {
                assert!(n.t_value < tree.threshold_of(i as u32));
            }
        }
    }
}
