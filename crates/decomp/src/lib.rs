//! Tree decompositions and `V_b`-connex tree decompositions (§3.2, §5, §6).
//!
//! * [`tree`] — the [`tree::TreeDecomposition`] type with full validation:
//!   edge coverage, running intersection, and the connex condition of
//!   Definition 1 (normalized, as in Appendix B, to a single root bag that
//!   equals the bound set `C = V_b`);
//! * [`elimination`] — construction of connex decompositions from
//!   elimination orders of the free variables;
//! * [`width`] — the width machinery: per-bag `ρ⁺_t` (eq. 3), the
//!   `V_b`-connex fractional hypertree δ-width, the δ-height, `u*`, and the
//!   delay-assignment optimizer that, given a space budget, picks the
//!   smallest per-bag delays (the per-bag **MinDelayCover** application of
//!   §6);
//! * [`search`] — decomposition search: exhaustive over elimination orders
//!   for small queries plus heuristic orders and bag-merge local search for
//!   larger ones; finding the optimal decomposition is NP-hard (§6), so the
//!   searcher optimizes the chosen objective best-effort while golden tests
//!   pin the paper's hand-constructed decompositions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod elimination;
pub mod search;
pub mod tree;
pub mod width;

pub use elimination::from_elimination;
pub use search::{search_connex, Objective};
pub use tree::TreeDecomposition;
pub use width::{connex_fhw, decomposition_widths, optimize_delays, BagWidth, WidthReport};
