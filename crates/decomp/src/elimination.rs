//! Connex decompositions from elimination orders.
//!
//! Eliminating the free variables one by one (bound variables are never
//! eliminated) yields a `V_b`-connex tree decomposition: each elimination
//! step contributes the bag `{x} ∪ N(x)` (current neighborhood, including
//! fill edges) hanging below the bag of the next eliminated neighbor, and
//! the bound variables collect in the root bag `C`. This is the classical
//! triangulation construction, specialized so that `C` stays connected at
//! the top — the same route by which \[5\] obtains C-connex decompositions.

use crate::tree::TreeDecomposition;
use cqc_common::error::{CqcError, Result};
use cqc_query::{Hypergraph, Var, VarSet};

/// Builds the `c`-connex decomposition induced by eliminating the free
/// variables in `order` (which must enumerate exactly `V \ c`).
///
/// The returned decomposition is simplified (subsumed bags contracted) and
/// always satisfies `validate_connex(h, c)`.
///
/// # Errors
///
/// Fails if `order` is not a permutation of the free variables.
pub fn from_elimination(h: &Hypergraph, c: VarSet, order: &[Var]) -> Result<TreeDecomposition> {
    let free = h.all_vars().minus(c);
    let order_set: VarSet = order.iter().copied().collect();
    if order_set != free || order.len() != free.len() {
        return Err(CqcError::InvalidDecomposition(format!(
            "elimination order {order_set} must enumerate the free variables {free} exactly"
        )));
    }

    // Current adjacency (including fill edges), as a neighbor set per var.
    let mut adj: Vec<VarSet> = (0..h.num_vars())
        .map(|i| h.neighbors(Var(i as u32)))
        .collect();

    let mut eliminated = VarSet::EMPTY;
    // Bags in construction order; node 0 is the root bag C.
    let mut bags: Vec<VarSet> = vec![c];
    // For each eliminated var: its bag node id.
    let mut node_of: Vec<usize> = vec![usize::MAX; h.num_vars()];
    // Record bags first; parents are resolved afterwards (a bag's parent is
    // the bag of the *earliest eliminated later* neighbor, which may not
    // exist yet while we sweep).
    let mut elim_pos: Vec<usize> = vec![usize::MAX; h.num_vars()];

    for (pos, &x) in order.iter().enumerate() {
        let live_neighbors = adj[x.index()].minus(eliminated);
        let bag = live_neighbors.with(x);
        let node = bags.len();
        bags.push(bag);
        node_of[x.index()] = node;
        elim_pos[x.index()] = pos;
        eliminated = eliminated.with(x);
        // Fill: the live neighbors become a clique.
        for v in live_neighbors.iter() {
            adj[v.index()] = adj[v.index()].union(live_neighbors).without(v);
        }
    }

    // Parent of bag(x): bag of the earliest-eliminated free variable in
    // bag(x) \ {x}; if none (all remaining members are bound), the root.
    let mut parent: Vec<Option<usize>> = vec![None; bags.len()];
    for &x in order {
        let node = node_of[x.index()];
        let later = bags[node].without(x).minus(c);
        let next = later
            .iter()
            .filter(|v| elim_pos[v.index()] > elim_pos[x.index()])
            .min_by_key(|v| elim_pos[v.index()]);
        parent[node] = Some(match next {
            Some(v) => node_of[v.index()],
            None => 0,
        });
    }
    parent[0] = None;

    // Parents may point forward (a later-eliminated variable has a later
    // node id, which is *larger*); re-index in topological order.
    let td = TreeDecomposition::from_unordered(bags, parent)?;
    let td = td.simplify();
    td.validate_connex(h, c)?;
    Ok(td)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vs(vars: &[u32]) -> VarSet {
        vars.iter().map(|&v| Var(v)).collect()
    }

    fn path6() -> Hypergraph {
        Hypergraph::new(7, (0..6).map(|i| vs(&[i, i + 1])).collect())
    }

    #[test]
    fn path6_elimination_produces_paper_like_bags() {
        // Eliminate v3, v2, v4, v7 with C = {v1, v5, v6}
        // (vars v1..v7 = Var(0)..Var(6)).
        let h = path6();
        let c = vs(&[0, 4, 5]);
        let order = [Var(2), Var(1), Var(3), Var(6)];
        let td = from_elimination(&h, c, &order).unwrap();
        td.validate_connex(&h, c).unwrap();
        // Expected bags: {v3,v2,v4}, {v2,v1,v4}, {v4,v1,v5}, {v7,v6}.
        let bags: Vec<VarSet> = (1..td.len()).map(|t| td.bag(t)).collect();
        assert!(bags.contains(&vs(&[2, 1, 3])));
        assert!(bags.contains(&vs(&[1, 0, 3])));
        assert!(bags.contains(&vs(&[3, 0, 4])));
        assert!(bags.contains(&vs(&[6, 5])));
    }

    #[test]
    fn triangle_full_enumeration_collapses_to_one_bag() {
        let h = Hypergraph::new(3, vec![vs(&[0, 1]), vs(&[1, 2]), vs(&[2, 0])]);
        let td = from_elimination(&h, VarSet::EMPTY, &[Var(0), Var(1), Var(2)]).unwrap();
        // {x}∪N = {x,y,z}; later bags are subsumed and contracted away.
        assert_eq!(td.len(), 2);
        assert_eq!(td.bag(1), vs(&[0, 1, 2]));
    }

    #[test]
    fn acyclic_star_stays_small() {
        // Star R_i(x_i, z), C = {x_1..x_n} bound, eliminate z last... z is
        // the only free variable.
        let h = Hypergraph::new(4, vec![vs(&[0, 3]), vs(&[1, 3]), vs(&[2, 3])]);
        let c = vs(&[0, 1, 2]);
        let td = from_elimination(&h, c, &[Var(3)]).unwrap();
        assert_eq!(td.len(), 2);
        assert_eq!(td.bag(1), vs(&[0, 1, 2, 3]));
    }

    #[test]
    fn wrong_order_rejected() {
        let h = path6();
        let c = vs(&[0, 4, 5]);
        assert!(from_elimination(&h, c, &[Var(2), Var(1)]).is_err());
        assert!(from_elimination(&h, c, &[Var(2), Var(1), Var(3), Var(5)]).is_err());
    }

    #[test]
    fn every_order_is_valid_for_path4() {
        // All 3! orders over the free variables of a 4-path with endpoints
        // bound must produce valid connex decompositions.
        let h = Hypergraph::new(5, (0..4).map(|i| vs(&[i, i + 1])).collect());
        let c = vs(&[0, 4]);
        let free = [Var(1), Var(2), Var(3)];
        let perms: Vec<Vec<Var>> = permutations(&free);
        assert_eq!(perms.len(), 6);
        for p in perms {
            let td = from_elimination(&h, c, &p).unwrap();
            td.validate_connex(&h, c).unwrap();
        }
    }

    fn permutations(items: &[Var]) -> Vec<Vec<Var>> {
        if items.is_empty() {
            return vec![vec![]];
        }
        let mut out = Vec::new();
        for (i, &x) in items.iter().enumerate() {
            let mut rest: Vec<Var> = items.to_vec();
            rest.remove(i);
            for mut p in permutations(&rest) {
                p.insert(0, x);
                out.push(p);
            }
        }
        out
    }
}
