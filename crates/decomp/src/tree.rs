//! Tree decompositions with connex validation.

use cqc_common::error::{CqcError, Result};
use cqc_query::{Hypergraph, Var, VarSet};

/// A rooted tree decomposition `(T, (B_t))` of a query hypergraph.
///
/// Node 0 is always the root. For `V_b`-connex decompositions the root bag
/// is exactly the bound set `C` (the Appendix B normalization: every bag
/// contained in `V_b` is merged into a single root bag `t_b`); the root bag
/// may be empty (full-enumeration views, `C = ∅`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeDecomposition {
    bags: Vec<VarSet>,
    parent: Vec<Option<usize>>,
    children: Vec<Vec<usize>>,
}

impl TreeDecomposition {
    /// Builds a decomposition from bags and parent pointers.
    ///
    /// `parent[i]` must be `None` exactly for node 0, and every parent index
    /// must be smaller than its child (nodes in topological order).
    ///
    /// # Errors
    ///
    /// Fails when the parent structure is not a tree rooted at node 0.
    pub fn new(bags: Vec<VarSet>, parent: Vec<Option<usize>>) -> Result<TreeDecomposition> {
        if bags.is_empty() || bags.len() != parent.len() {
            return Err(CqcError::InvalidDecomposition(
                "need one parent entry per bag and at least one bag".into(),
            ));
        }
        if parent[0].is_some() {
            return Err(CqcError::InvalidDecomposition(
                "node 0 must be the root".into(),
            ));
        }
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); bags.len()];
        for (i, p) in parent.iter().enumerate().skip(1) {
            match p {
                Some(p) if *p < i => children[*p].push(i),
                Some(_) => {
                    return Err(CqcError::InvalidDecomposition(format!(
                        "parent of node {i} must precede it (topological order)"
                    )));
                }
                None => {
                    return Err(CqcError::InvalidDecomposition(format!(
                        "node {i} has no parent but is not the root"
                    )));
                }
            }
        }
        Ok(TreeDecomposition {
            bags,
            parent,
            children,
        })
    }

    /// The root node (always 0).
    pub fn root(&self) -> usize {
        0
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.bags.len()
    }

    /// `true` when only the root exists.
    pub fn is_empty(&self) -> bool {
        self.bags.len() <= 1
    }

    /// The bag of node `t`.
    pub fn bag(&self, t: usize) -> VarSet {
        self.bags[t]
    }

    /// All bags.
    pub fn bags(&self) -> &[VarSet] {
        &self.bags
    }

    /// Parent of `t` (`None` for the root).
    pub fn parent(&self, t: usize) -> Option<usize> {
        self.parent[t]
    }

    /// Children of `t`.
    pub fn children(&self, t: usize) -> &[usize] {
        &self.children[t]
    }

    /// Nodes in pre-order (root first; children in index order).
    pub fn preorder(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.len());
        let mut stack = vec![0usize];
        while let Some(t) = stack.pop() {
            out.push(t);
            for &c in self.children[t].iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// Nodes in post-order (children before parents).
    pub fn postorder(&self) -> Vec<usize> {
        let mut pre = self.preorder();
        // Reverse pre-order with reversed child order is a valid post-order
        // for our purposes (children before parents).
        pre.reverse();
        pre
    }

    /// `anc(t)`: the union of the bags of `t`'s strict ancestors (§3.2).
    pub fn anc_vars(&self, t: usize) -> VarSet {
        let mut acc = VarSet::EMPTY;
        let mut cur = self.parent[t];
        while let Some(p) = cur {
            acc = acc.union(self.bags[p]);
            cur = self.parent[p];
        }
        acc
    }

    /// `V_b^t = B_t ∩ anc(t)`: the bag's bound variables in the top-down
    /// traversal.
    pub fn bag_bound(&self, t: usize) -> VarSet {
        self.bags[t].intersect(self.anc_vars(t))
    }

    /// `V_f^t = B_t \ anc(t)`: the bag's free variables.
    pub fn bag_free(&self, t: usize) -> VarSet {
        self.bags[t].minus(self.anc_vars(t))
    }

    /// Validates the two tree-decomposition conditions of §2.1 against `h`:
    /// every edge is contained in some bag, and for each variable the nodes
    /// containing it form a connected subtree.
    pub fn validate(&self, h: &Hypergraph) -> Result<()> {
        for (i, e) in h.edges().iter().enumerate() {
            if !self.bags.iter().any(|b| e.is_subset_of(*b)) {
                return Err(CqcError::InvalidDecomposition(format!(
                    "edge #{i} {e} is contained in no bag"
                )));
            }
        }
        for v in h.all_vars().iter() {
            self.check_connected(v)?;
        }
        Ok(())
    }

    fn check_connected(&self, v: Var) -> Result<()> {
        let holders: Vec<usize> = (0..self.len())
            .filter(|&t| self.bags[t].contains(v))
            .collect();
        if holders.len() <= 1 {
            return Ok(());
        }
        // The nodes containing v are connected iff every holder except the
        // shallowest has a parent that also holds v, OR walking up from each
        // holder through holder-parents reaches a common top holder. Since
        // parents precede children in index order, it suffices that each
        // holder other than the minimal one has its parent in the holder set.
        let top = holders[0];
        for &t in &holders[1..] {
            match self.parent[t] {
                Some(p) if self.bags[p].contains(v) => {}
                _ if t == top => {}
                _ => {
                    return Err(CqcError::InvalidDecomposition(format!(
                        "variable {v} violates the running intersection property at node {t}"
                    )));
                }
            }
        }
        Ok(())
    }

    /// Validates the `C`-connex condition (Definition 1) in the normalized
    /// form used throughout: the decomposition is valid for `h` and the root
    /// bag equals `C` exactly.
    pub fn validate_connex(&self, h: &Hypergraph, c: VarSet) -> Result<()> {
        self.validate(h)?;
        if self.bags[0] != c {
            return Err(CqcError::InvalidDecomposition(format!(
                "root bag {} must equal the bound set {}",
                self.bags[0], c
            )));
        }
        for t in 1..self.len() {
            if self.bags[t].is_subset_of(c) {
                return Err(CqcError::InvalidDecomposition(format!(
                    "bag {t} is contained in the bound set; merge it into the root (App. B)"
                )));
            }
        }
        Ok(())
    }

    /// Contracts node `t` into its parent (bags are unioned). Children of
    /// `t` are reattached to the parent. Returns a new decomposition.
    ///
    /// # Panics
    ///
    /// Panics when `t` is the root.
    pub fn merge_into_parent(&self, t: usize) -> TreeDecomposition {
        assert!(t != 0, "cannot merge the root");
        let p = self.parent[t].expect("non-root has a parent");
        let mut bags = Vec::with_capacity(self.len() - 1);
        let mut parent = Vec::with_capacity(self.len() - 1);
        // Old index -> new index.
        let remap: Vec<Option<usize>> = {
            let mut m = Vec::with_capacity(self.len());
            let mut next = 0usize;
            for i in 0..self.len() {
                if i == t {
                    m.push(None);
                } else {
                    m.push(Some(next));
                    next += 1;
                }
            }
            m
        };
        for i in 0..self.len() {
            if i == t {
                continue;
            }
            let bag = if i == p {
                self.bags[p].union(self.bags[t])
            } else {
                self.bags[i]
            };
            bags.push(bag);
            let par = self.parent[i].map(|q| if q == t { p } else { q });
            parent.push(par.map(|q| remap[q].expect("parent not removed")));
        }
        TreeDecomposition::new(bags, parent).expect("merge preserves tree structure")
    }

    /// Removes node `t`, promoting child `ch` into its place: `ch` becomes a
    /// child of `t`'s parent and `t`'s other children become children of
    /// `ch`. Valid (decomposition-preserving) when `bag(t) ⊆ bag(ch)`.
    ///
    /// # Panics
    ///
    /// Panics when `t` is the root or `ch` is not a child of `t`.
    pub fn contract_into_child(&self, t: usize, ch: usize) -> TreeDecomposition {
        assert!(t != 0, "cannot contract the root");
        assert!(self.children[t].contains(&ch), "ch must be a child of t");
        let p = self.parent[t].expect("non-root has a parent");
        let mut bags = Vec::with_capacity(self.len() - 1);
        let mut parent = Vec::with_capacity(self.len() - 1);
        let mut keep: Vec<usize> = Vec::with_capacity(self.len() - 1);
        for i in 0..self.len() {
            if i != t {
                keep.push(i);
            }
        }
        for &i in &keep {
            bags.push(self.bags[i]);
            let par = if i == ch {
                Some(p)
            } else {
                match self.parent[i] {
                    Some(q) if q == t => Some(ch),
                    other => other,
                }
            };
            parent.push(par);
        }
        // Remap old ids to positions in `keep`.
        let pos_of = |old: usize| keep.iter().position(|&k| k == old).expect("kept node");
        let parent: Vec<Option<usize>> = parent.into_iter().map(|p| p.map(pos_of)).collect();
        TreeDecomposition::from_unordered(bags, parent)
            .expect("contraction preserves tree structure")
    }

    /// Builds a decomposition from bags and parent pointers in *arbitrary*
    /// node order (re-indexes topologically so that parents precede
    /// children, with the root moved to position 0).
    ///
    /// # Errors
    ///
    /// Fails when the parent pointers do not describe a tree.
    pub fn from_unordered(
        bags: Vec<VarSet>,
        parent: Vec<Option<usize>>,
    ) -> Result<TreeDecomposition> {
        let n = bags.len();
        if n == 0 || parent.len() != n {
            return Err(CqcError::InvalidDecomposition(
                "need one parent entry per bag and at least one bag".into(),
            ));
        }
        let roots: Vec<usize> = (0..n).filter(|&i| parent[i].is_none()).collect();
        if roots.len() != 1 {
            return Err(CqcError::InvalidDecomposition(format!(
                "expected exactly one root, found {}",
                roots.len()
            )));
        }
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, p) in parent.iter().enumerate() {
            if let Some(p) = p {
                if *p >= n {
                    return Err(CqcError::InvalidDecomposition(format!(
                        "parent index {p} out of range"
                    )));
                }
                children[*p].push(i);
            }
        }
        let mut order = Vec::with_capacity(n);
        let mut stack = vec![roots[0]];
        while let Some(x) = stack.pop() {
            order.push(x);
            for &c in children[x].iter().rev() {
                stack.push(c);
            }
        }
        if order.len() != n {
            return Err(CqcError::InvalidDecomposition(
                "parent pointers contain a cycle or disconnected node".into(),
            ));
        }
        let mut new_id = vec![usize::MAX; n];
        for (new, &old) in order.iter().enumerate() {
            new_id[old] = new;
        }
        let new_bags: Vec<VarSet> = order.iter().map(|&o| bags[o]).collect();
        let new_parent: Vec<Option<usize>> = order
            .iter()
            .map(|&o| parent[o].map(|p| new_id[p]))
            .collect();
        TreeDecomposition::new(new_bags, new_parent)
    }

    /// Removes non-root bags that are subsets of their parent (merged
    /// upward) or of a child (contracted into that child), repeatedly,
    /// producing a minimal equivalent decomposition. The root bag is never
    /// altered.
    pub fn simplify(&self) -> TreeDecomposition {
        let mut cur = self.clone();
        'outer: loop {
            for t in 1..cur.len() {
                let p = cur.parent[t].unwrap();
                if cur.bags[t].is_subset_of(cur.bags[p]) && p != 0 {
                    cur = cur.merge_into_parent(t);
                    continue 'outer;
                }
                if let Some(&ch) = cur.children[t]
                    .iter()
                    .find(|&&ch| cur.bags[t].is_subset_of(cur.bags[ch]))
                {
                    cur = cur.contract_into_child(t, ch);
                    continue 'outer;
                }
                if cur.bags[t].is_subset_of(cur.bags[p]) {
                    // Parent is the root: drop t by attaching its children
                    // to the root only when t adds nothing, i.e. its bag is
                    // inside the root bag; contract upward without changing
                    // the root bag.
                    cur = cur.drop_redundant_under_root(t);
                    continue 'outer;
                }
            }
            return cur;
        }
    }

    /// Removes a node whose bag is contained in the root bag, reattaching
    /// its children to the root (the root bag is unchanged).
    fn drop_redundant_under_root(&self, t: usize) -> TreeDecomposition {
        debug_assert!(self.bags[t].is_subset_of(self.bags[0]));
        let bags: Vec<VarSet> = (0..self.len())
            .filter(|&i| i != t)
            .map(|i| self.bags[i])
            .collect();
        let parent: Vec<Option<usize>> = (0..self.len())
            .filter(|&i| i != t)
            .map(|i| match self.parent[i] {
                Some(q) if q == t => Some(0),
                other => other,
            })
            .collect();
        // Remap indices (everything after t shifts down by one).
        let remap = |old: usize| if old > t { old - 1 } else { old };
        let parent = parent.into_iter().map(|p| p.map(remap)).collect();
        TreeDecomposition::from_unordered(bags, parent)
            .expect("dropping a redundant node preserves the tree")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vs(vars: &[u32]) -> VarSet {
        vars.iter().map(|&v| Var(v)).collect()
    }

    /// The path query of length 6 from Figure 2: edges {v_i, v_{i+1}},
    /// variables v1..v7 = Var(0)..Var(6).
    fn path6() -> Hypergraph {
        Hypergraph::new(7, (0..6).map(|i| vs(&[i, i + 1])).collect())
    }

    /// The right-hand decomposition of Figure 2: C = {v1, v5, v6}.
    fn fig2_right() -> TreeDecomposition {
        TreeDecomposition::new(
            vec![
                vs(&[0, 4, 5]),    // root: {v1, v5, v6}
                vs(&[1, 3, 0, 4]), // {v2, v4 | v1, v5}
                vs(&[2, 1, 3]),    // {v3 | v2, v4}
                vs(&[6, 5]),       // {v7 | v6}
            ],
            vec![None, Some(0), Some(1), Some(0)],
        )
        .unwrap()
    }

    #[test]
    fn fig2_right_is_valid_connex() {
        let h = path6();
        let td = fig2_right();
        td.validate(&h).unwrap();
        td.validate_connex(&h, vs(&[0, 4, 5])).unwrap();
    }

    #[test]
    fn bound_and_free_splits() {
        let td = fig2_right();
        assert_eq!(td.bag_bound(1), vs(&[0, 4]));
        assert_eq!(td.bag_free(1), vs(&[1, 3]));
        assert_eq!(td.bag_bound(2), vs(&[1, 3]));
        assert_eq!(td.bag_free(2), vs(&[2]));
        assert_eq!(td.bag_bound(3), vs(&[5]));
        assert_eq!(td.bag_free(3), vs(&[6]));
        assert_eq!(td.bag_free(0), vs(&[0, 4, 5]));
    }

    #[test]
    fn orders() {
        let td = fig2_right();
        assert_eq!(td.preorder(), vec![0, 1, 2, 3]);
        let post = td.postorder();
        // Children before parents.
        let pos = |t: usize| post.iter().position(|&x| x == t).unwrap();
        assert!(pos(2) < pos(1));
        assert!(pos(1) < pos(0));
        assert!(pos(3) < pos(0));
    }

    #[test]
    fn coverage_violation_detected() {
        let h = path6();
        // Missing the {v6, v7} edge.
        let td = TreeDecomposition::new(
            vec![vs(&[0, 4, 5]), vs(&[1, 3, 0, 4]), vs(&[2, 1, 3])],
            vec![None, Some(0), Some(1)],
        )
        .unwrap();
        assert!(td.validate(&h).is_err());
    }

    #[test]
    fn running_intersection_violation_detected() {
        let h = Hypergraph::new(3, vec![vs(&[0, 1]), vs(&[1, 2])]);
        // v1 (=Var(1)) appears in two bags that are not adjacent.
        let td = TreeDecomposition::new(
            vec![vs(&[0]), vs(&[0, 1]), vs(&[0, 2]), vs(&[1, 2])],
            vec![None, Some(0), Some(1), Some(2)],
        )
        .unwrap();
        assert!(td.validate(&h).is_err());
    }

    #[test]
    fn connex_requires_exact_root_bag() {
        let h = path6();
        let td = fig2_right();
        assert!(td.validate_connex(&h, vs(&[0, 4])).is_err());
    }

    #[test]
    fn merge_into_parent() {
        let td = fig2_right();
        let merged = td.merge_into_parent(2);
        assert_eq!(merged.len(), 3);
        // Bag 1 absorbed v3.
        assert_eq!(merged.bag(1), vs(&[0, 1, 2, 3, 4]));
        merged.validate(&path6()).unwrap();
    }

    #[test]
    fn simplify_contracts_subsumed_bags() {
        let h = Hypergraph::new(3, vec![vs(&[0, 1, 2])]);
        let td = TreeDecomposition::new(
            vec![VarSet::EMPTY, vs(&[0, 1, 2]), vs(&[1, 2]), vs(&[2])],
            vec![None, Some(0), Some(1), Some(2)],
        )
        .unwrap();
        let s = td.simplify();
        assert_eq!(s.len(), 2);
        s.validate(&h).unwrap();
        s.validate_connex(&h, VarSet::EMPTY).unwrap();
    }

    #[test]
    fn malformed_trees_rejected() {
        assert!(TreeDecomposition::new(vec![], vec![]).is_err());
        assert!(TreeDecomposition::new(vec![VarSet::EMPTY], vec![Some(0)]).is_err());
        assert!(TreeDecomposition::new(vec![VarSet::EMPTY, vs(&[0])], vec![None, None]).is_err());
        // Forward parent reference.
        assert!(TreeDecomposition::new(
            vec![VarSet::EMPTY, vs(&[0]), vs(&[1])],
            vec![None, Some(2), Some(0)]
        )
        .is_err());
    }
}
