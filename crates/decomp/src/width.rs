//! Width machinery: δ-width, δ-height, `u*` and delay-assignment
//! optimization.
//!
//! Given a `V_b`-connex decomposition and a delay assignment
//! `δ : V(T) → [0, ∞)` (with `δ = 0` on the root), the paper defines
//! (§3.2):
//!
//! * `ρ⁺_t = min_u (Σ_F u_F − δ(t)·α(V_f^t))` per non-root bag (eq. 3);
//! * the **δ-width**: `max_t ρ⁺_t` over non-root bags;
//! * the **δ-height**: the maximum root-to-leaf total `Σ_{t∈P} δ(t)`;
//! * `u* = max_t u⁺_t`, which drives Theorem 2's compression time.
//!
//! [`optimize_delays`] implements the §6 strategy for a given decomposition
//! and space budget: per bag, pick the smallest `δ(t)` whose `ρ⁺_t` fits the
//! budget — each bag's problem is an instance of MinDelayCover, solved here
//! by a monotone binary search over `δ(t)` (the paper's Prop. 11 LP solves
//! the same problem; `cqc-lp` provides both and they are cross-checked in
//! its tests).

use crate::tree::TreeDecomposition;
use cqc_common::error::Result;
use cqc_lp::covers::rho_plus;
use cqc_query::Hypergraph;

/// Width data for one bag.
#[derive(Debug, Clone)]
pub struct BagWidth {
    /// Bag (node) index in the decomposition.
    pub node: usize,
    /// The delay exponent δ(t).
    pub delta: f64,
    /// `ρ⁺_t` (eq. 3).
    pub rho_plus: f64,
    /// `u⁺_t`: total weight of the minimizing cover.
    pub u_plus: f64,
    /// Slack of the minimizing cover on the bag's free variables.
    pub alpha: f64,
    /// The minimizing cover, indexed by hypergraph edge.
    pub weights: Vec<f64>,
}

/// Widths of a whole decomposition under a delay assignment.
#[derive(Debug, Clone)]
pub struct WidthReport {
    /// Per-bag widths for non-root bags (indexed by node id; the root has
    /// no entry).
    pub bags: Vec<BagWidth>,
    /// The `V_b`-connex fractional hypertree δ-width `max_t ρ⁺_t`.
    pub delta_width: f64,
    /// The δ-height: maximum root-to-leaf `Σ δ(t)`.
    pub delta_height: f64,
    /// `u* = max_t u⁺_t`.
    pub u_star: f64,
    /// `max_t δ(t)` (appears in Theorem 2's compression time).
    pub max_delta: f64,
}

/// Computes per-bag `ρ⁺`, δ-width, δ-height and `u*` for a decomposition
/// under the delay assignment `delta` (indexed by node; `delta[root]` must
/// be 0).
///
/// # Errors
///
/// Propagates LP failures (e.g. a bag variable covered by no edge).
// Node ids double as indexes into the per-node delay vector.
#[allow(clippy::needless_range_loop)]
pub fn decomposition_widths(
    h: &Hypergraph,
    td: &TreeDecomposition,
    delta: &[f64],
) -> Result<WidthReport> {
    assert_eq!(delta.len(), td.len(), "one delay per node");
    assert!(
        delta[td.root()] == 0.0,
        "the root (bound) bag carries no delay"
    );
    let mut bags = Vec::with_capacity(td.len().saturating_sub(1));
    let mut delta_width: f64 = 0.0;
    let mut u_star: f64 = 0.0;
    let mut max_delta: f64 = 0.0;
    for t in 1..td.len() {
        let rp = rho_plus(h, td.bag(t), td.bag_free(t), delta[t])?;
        delta_width = delta_width.max(rp.value);
        u_star = u_star.max(rp.u_plus);
        max_delta = max_delta.max(delta[t]);
        bags.push(BagWidth {
            node: t,
            delta: delta[t],
            rho_plus: rp.value,
            u_plus: rp.u_plus,
            alpha: rp.alpha,
            weights: rp.weights,
        });
    }
    // δ-height: max over leaves of the path sum.
    let mut height = vec![0.0f64; td.len()];
    let mut delta_height: f64 = 0.0;
    for t in td.preorder() {
        height[t] = td.parent(t).map_or(0.0, |p| height[p]) + delta[t];
        if td.children(t).is_empty() {
            delta_height = delta_height.max(height[t]);
        }
    }
    Ok(WidthReport {
        bags,
        delta_width,
        delta_height,
        u_star,
        max_delta,
    })
}

/// The `V_b`-connex fractional hypertree width of a *given* decomposition:
/// its δ-width under the all-zero assignment (`fhw(H | V_b)` is the minimum
/// of this over all decompositions; use `search::search_connex` for the
/// search).
pub fn connex_fhw(h: &Hypergraph, td: &TreeDecomposition) -> Result<f64> {
    Ok(decomposition_widths(h, td, &vec![0.0; td.len()])?.delta_width)
}

/// Given a space budget (as an exponent of `|D|`), assigns each bag the
/// smallest delay exponent `δ(t)` such that `ρ⁺_t ≤ budget_exp`, i.e. such
/// that the bag's Theorem-1 structure fits in `O(|D|^{budget_exp})` space.
///
/// Returns the per-node delay vector (0 for the root). A bag whose plain
/// `ρ*` already fits gets `δ(t) = 0`.
///
/// # Errors
///
/// Propagates LP failures. A budget below 1 (less than linear space) is
/// clamped to 1, since the base indexes alone are linear.
// Node ids double as indexes into the per-node delay vector.
#[allow(clippy::needless_range_loop)]
pub fn optimize_delays(
    h: &Hypergraph,
    td: &TreeDecomposition,
    budget_exp: f64,
) -> Result<Vec<f64>> {
    let budget = budget_exp.max(1.0);
    let mut delta = vec![0.0f64; td.len()];
    for t in 1..td.len() {
        let at_zero = rho_plus(h, td.bag(t), td.bag_free(t), 0.0)?;
        if at_zero.value <= budget + 1e-9 {
            continue;
        }
        // ρ⁺ is non-increasing and continuous in δ; binary search for the
        // smallest δ meeting the budget. δ ≤ u⁺(0) always suffices: with the
        // cover fixed, ρ⁺ ≤ Σu − δ·1 ≤ 0 ≤ budget at δ = Σu.
        let mut lo = 0.0f64;
        let mut hi = at_zero.u_plus.max(1.0);
        for _ in 0..40 {
            let mid = 0.5 * (lo + hi);
            let rp = rho_plus(h, td.bag(t), td.bag_free(t), mid)?;
            if rp.value <= budget + 1e-12 {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        delta[t] = hi;
    }
    Ok(delta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::TreeDecomposition;
    use cqc_query::{Var, VarSet};

    fn vs(vars: &[u32]) -> VarSet {
        vars.iter().map(|&v| Var(v)).collect()
    }

    fn path6() -> Hypergraph {
        Hypergraph::new(7, (0..6).map(|i| vs(&[i, i + 1])).collect())
    }

    fn fig2_right() -> TreeDecomposition {
        TreeDecomposition::new(
            vec![
                vs(&[0, 4, 5]),
                vs(&[1, 3, 0, 4]),
                vs(&[2, 1, 3]),
                vs(&[6, 5]),
            ],
            vec![None, Some(0), Some(1), Some(0)],
        )
        .unwrap()
    }

    /// Example 9: δ = (1/3, 1/6, 0) on the three non-root bags gives
    /// δ-width 5/3, δ-height 1/2, and u⁺ values (2, 2, 1).
    #[test]
    fn example_9_widths() {
        let h = path6();
        let td = fig2_right();
        let delta = vec![0.0, 1.0 / 3.0, 1.0 / 6.0, 0.0];
        let w = decomposition_widths(&h, &td, &delta).unwrap();
        assert!(
            (w.delta_width - 5.0 / 3.0).abs() < 1e-6,
            "{}",
            w.delta_width
        );
        assert!((w.delta_height - 0.5).abs() < 1e-9, "{}", w.delta_height);
        assert!((w.u_star - 2.0).abs() < 1e-6);
        let u: Vec<f64> = w.bags.iter().map(|b| b.u_plus).collect();
        assert!((u[0] - 2.0).abs() < 1e-6);
        assert!((u[1] - 2.0).abs() < 1e-6);
        assert!((u[2] - 1.0).abs() < 1e-6);
    }

    /// With δ = 0 everywhere the δ-width of Figure 2 (right) is
    /// max(ρ*(bags)) = 2.
    #[test]
    fn zero_delay_width() {
        let h = path6();
        let td = fig2_right();
        let w = connex_fhw(&h, &td).unwrap();
        assert!((w - 2.0).abs() < 1e-6, "{w}");
    }

    /// Example 16: R(x,y), S(y,z) with V_b = {x,z}. The only connex
    /// decomposition has bags {x,z} and {x,y,z}: fhw(H | V_b) = 2 even
    /// though fhw(H) = 1.
    #[test]
    fn example_16_connex_width_exceeds_fhw() {
        let h = Hypergraph::new(3, vec![vs(&[0, 1]), vs(&[1, 2])]);
        let td =
            TreeDecomposition::new(vec![vs(&[0, 2]), vs(&[0, 1, 2])], vec![None, Some(0)]).unwrap();
        td.validate_connex(&h, vs(&[0, 2])).unwrap();
        let w = connex_fhw(&h, &td).unwrap();
        assert!((w - 2.0).abs() < 1e-6, "{w}");
    }

    /// Figure 7 / Example 17: fhw(H) = 2 but fhw(H | V_b) = 3/2 with
    /// C = {v1..v4}: the lower bag {v5 | v1, v2} is covered at weight 3/2.
    ///
    /// Hypergraph (Fig. 7): vertices v1..v5 = Var(0..4); edges
    /// W = {v1, v5}, V = {v2, v5}, U = {v2, v3}, T = {v3, v4}, R = {v4, v5}?
    /// The figure draws a 4-cycle v1v2v3v4 with center v5; we encode edges
    /// S={v1,v2}, U={v2,v3}, T={v3,v4}, R={v4,v1}, W={v1,v5}, V={v2,v5}.
    #[test]
    fn figure_7_connex_width() {
        let h = Hypergraph::new(
            5,
            vec![
                vs(&[0, 1]), // S
                vs(&[1, 2]), // U
                vs(&[2, 3]), // T
                vs(&[3, 0]), // R
                vs(&[0, 4]), // W
                vs(&[1, 4]), // V
            ],
        );
        let c = vs(&[0, 1, 2, 3]);
        let td = TreeDecomposition::new(vec![c, vs(&[4, 0, 1])], vec![None, Some(0)]).unwrap();
        td.validate_connex(&h, c).unwrap();
        // Bag {v5, v1, v2}: cover by W{v1,v5}, V{v2,v5}, S{v1,v2} at 1/2
        // each = 3/2.
        let w = connex_fhw(&h, &td).unwrap();
        assert!((w - 1.5).abs() < 1e-6, "{w}");
    }

    #[test]
    fn optimize_delays_respects_budget() {
        let h = path6();
        let td = fig2_right();
        // Budget |D|^{5/3} should admit delays ≤ Example 9's assignment.
        let delta = optimize_delays(&h, &td, 5.0 / 3.0).unwrap();
        let w = decomposition_widths(&h, &td, &delta).unwrap();
        assert!(w.delta_width <= 5.0 / 3.0 + 1e-6);
        assert!(delta[1] <= 1.0 / 3.0 + 1e-6);
        assert!(delta[2] <= 1.0 / 6.0 + 1e-4);
        assert!(delta[3] <= 1e-9);
        // A generous budget needs no delay at all.
        let delta = optimize_delays(&h, &td, 2.0).unwrap();
        assert!(delta.iter().all(|d| *d < 1e-9));
        // A tight (linear) budget forces larger delays but stays within it.
        let delta = optimize_delays(&h, &td, 1.0).unwrap();
        let w = decomposition_widths(&h, &td, &delta).unwrap();
        assert!(w.delta_width <= 1.0 + 1e-6);
        assert!(delta[1] > 0.0);
    }
}
