//! Decomposition search.
//!
//! Finding the width-optimal `V_b`-connex decomposition is NP-hard (§6, via
//! hardness of fhw \[20\]), so this module searches best-effort:
//!
//! 1. enumerate elimination orders — all `|V_f|!` permutations when
//!    `|V_f| ≤ 7`, otherwise min-degree/min-fill heuristic orders plus
//!    deterministic rotations;
//! 2. for each candidate, evaluate the objective;
//! 3. improve by *bag-merge local search*: repeatedly merge a bag into its
//!    parent when that improves the objective. Merging trades width for
//!    height, which is exactly how the paper's Example 10 decomposition of
//!    the path query (pairs of endpoints per bag) arises from a single-
//!    variable elimination decomposition.

use crate::elimination::from_elimination;
use crate::tree::TreeDecomposition;
use crate::width::{decomposition_widths, optimize_delays};
use cqc_common::error::{CqcError, Result};
use cqc_query::{Hypergraph, Var, VarSet};

/// Search objective.
#[derive(Debug, Clone, Copy)]
pub enum Objective {
    /// Minimize the plain connex fractional hypertree width
    /// `max_t ρ*(B_t)` (δ = 0 everywhere): the Prop. 4 regime.
    MinimizeWidth,
    /// Given a space budget `|D|^{budget_exp}`, choose per-bag delays with
    /// [`optimize_delays`] and minimize the resulting δ-height (tie-break
    /// on δ-width): the Theorem 2 regime.
    MinimizeHeightUnderBudget {
        /// Space budget as an exponent of `|D|`.
        budget_exp: f64,
    },
}

/// A search result: the decomposition together with its optimized delay
/// assignment and score.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// The winning decomposition.
    pub td: TreeDecomposition,
    /// Per-node delay assignment (all zeros for
    /// [`Objective::MinimizeWidth`]).
    pub delta: Vec<f64>,
    /// Primary score (width, or height depending on objective).
    pub score: f64,
}

/// Searches for a good `c`-connex decomposition of `h` under `objective`.
///
/// # Errors
///
/// Fails when `h` admits no connex decomposition (a variable covered by no
/// edge) or LP evaluation fails.
pub fn search_connex(h: &Hypergraph, c: VarSet, objective: Objective) -> Result<SearchResult> {
    let free: Vec<Var> = h.all_vars().minus(c).iter().collect();
    if free.is_empty() {
        // Boolean views: the decomposition is just the root bag.
        let td = TreeDecomposition::new(vec![c], vec![None])?;
        return Ok(SearchResult {
            td,
            delta: vec![0.0],
            score: 0.0,
        });
    }

    let orders = candidate_orders(h, &free);
    let mut best: Option<SearchResult> = None;
    for order in &orders {
        let Ok(td) = from_elimination(h, c, order) else {
            continue;
        };
        for cand in with_merges(&td, h, c) {
            let scored = score(h, &cand, objective)?;
            let better = match &best {
                None => true,
                Some(b) => {
                    scored.score < b.score - 1e-9
                        || ((scored.score - b.score).abs() <= 1e-9 && cand.len() < b.td.len())
                }
            };
            if better {
                best = Some(SearchResult {
                    td: cand,
                    delta: scored.delta,
                    score: scored.score,
                });
            }
        }
    }
    best.ok_or_else(|| CqcError::InvalidDecomposition("no valid decomposition found".into()))
}

struct Scored {
    delta: Vec<f64>,
    score: f64,
}

fn score(h: &Hypergraph, td: &TreeDecomposition, objective: Objective) -> Result<Scored> {
    match objective {
        Objective::MinimizeWidth => {
            let w = decomposition_widths(h, td, &vec![0.0; td.len()])?;
            Ok(Scored {
                delta: vec![0.0; td.len()],
                score: w.delta_width,
            })
        }
        Objective::MinimizeHeightUnderBudget { budget_exp } => {
            let delta = optimize_delays(h, td, budget_exp)?;
            let w = decomposition_widths(h, td, &delta)?;
            // Height is the delay exponent; width is a small tie-breaker so
            // equal-height candidates prefer less space.
            Ok(Scored {
                score: w.delta_height + 1e-4 * w.delta_width,
                delta,
            })
        }
    }
}

/// The candidate set for one base decomposition: the decomposition itself
/// plus everything reachable by up to two rounds of single bag-merges
/// (bounded to keep the search polynomial for the exhaustive-permutation
/// regime).
fn with_merges(td: &TreeDecomposition, h: &Hypergraph, c: VarSet) -> Vec<TreeDecomposition> {
    let mut out = vec![td.clone()];
    let mut frontier = vec![td.clone()];
    for _round in 0..2 {
        let mut next = Vec::new();
        for cand in &frontier {
            for t in 1..cand.len() {
                if cand.parent(t) == Some(0) {
                    // Never merge into the root: the root bag must stay = C.
                    continue;
                }
                let merged = cand.merge_into_parent(t).simplify();
                if merged.validate_connex(h, c).is_ok() && !out.iter().any(|o| o == &merged) {
                    out.push(merged.clone());
                    next.push(merged);
                }
            }
        }
        frontier = next;
        if frontier.is_empty() {
            break;
        }
    }
    out
}

/// Candidate elimination orders.
fn candidate_orders(h: &Hypergraph, free: &[Var]) -> Vec<Vec<Var>> {
    if free.len() <= 7 {
        return permutations(free);
    }
    let mut orders = Vec::new();
    orders.push(greedy_order(h, free, GreedyRule::MinDegree));
    orders.push(greedy_order(h, free, GreedyRule::MinFill));
    // Deterministic rotations of the natural order for diversity.
    let mut base: Vec<Var> = free.to_vec();
    for _ in 0..free.len().min(8) {
        base.rotate_left(1);
        orders.push(base.clone());
    }
    orders
}

#[derive(Clone, Copy)]
enum GreedyRule {
    MinDegree,
    MinFill,
}

fn greedy_order(h: &Hypergraph, free: &[Var], rule: GreedyRule) -> Vec<Var> {
    let mut adj: Vec<VarSet> = (0..h.num_vars())
        .map(|i| h.neighbors(Var(i as u32)))
        .collect();
    let mut remaining: VarSet = free.iter().copied().collect();
    let mut eliminated = VarSet::EMPTY;
    let mut order = Vec::with_capacity(free.len());
    while !remaining.is_empty() {
        let pick = remaining
            .iter()
            .min_by_key(|&x| {
                let live = adj[x.index()].minus(eliminated);
                match rule {
                    GreedyRule::MinDegree => live.len(),
                    GreedyRule::MinFill => {
                        let mut fill = 0usize;
                        let members: Vec<Var> = live.iter().collect();
                        for (i, &a) in members.iter().enumerate() {
                            for &b in &members[i + 1..] {
                                if !adj[a.index()].contains(b) {
                                    fill += 1;
                                }
                            }
                        }
                        fill
                    }
                }
            })
            .expect("non-empty remaining");
        let live = adj[pick.index()].minus(eliminated);
        for v in live.iter() {
            adj[v.index()] = adj[v.index()].union(live).without(v);
        }
        eliminated = eliminated.with(pick);
        remaining = remaining.without(pick);
        order.push(pick);
    }
    order
}

fn permutations(items: &[Var]) -> Vec<Vec<Var>> {
    if items.is_empty() {
        return vec![vec![]];
    }
    let mut out = Vec::new();
    for (i, &x) in items.iter().enumerate() {
        let mut rest: Vec<Var> = items.to_vec();
        rest.remove(i);
        for mut p in permutations(&rest) {
            p.insert(0, x);
            out.push(p);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vs(vars: &[u32]) -> VarSet {
        vars.iter().map(|&v| Var(v)).collect()
    }

    #[test]
    fn triangle_width_search_finds_rho_star() {
        let h = Hypergraph::new(3, vec![vs(&[0, 1]), vs(&[1, 2]), vs(&[2, 0])]);
        let r = search_connex(&h, VarSet::EMPTY, Objective::MinimizeWidth).unwrap();
        assert!((r.score - 1.5).abs() < 1e-6, "fhw(triangle) = 3/2");
    }

    #[test]
    fn acyclic_queries_have_width_one() {
        // Path of length 3, full enumeration: fhw = 1.
        let h = Hypergraph::new(4, (0..3).map(|i| vs(&[i, i + 1])).collect());
        let r = search_connex(&h, VarSet::EMPTY, Objective::MinimizeWidth).unwrap();
        assert!(
            (r.score - 1.0).abs() < 1e-6,
            "fhw(path) = 1, got {}",
            r.score
        );
    }

    #[test]
    fn example_16_width_two_is_forced() {
        // R(x,y), S(y,z), V_b = {x, z}: the only connex option packs y with
        // both x and z ⇒ width 2.
        let h = Hypergraph::new(3, vec![vs(&[0, 1]), vs(&[1, 2])]);
        let r = search_connex(&h, vs(&[0, 2]), Objective::MinimizeWidth).unwrap();
        assert!((r.score - 2.0).abs() < 1e-6, "got {}", r.score);
    }

    #[test]
    fn figure_7_search_reaches_three_halves() {
        let h = Hypergraph::new(
            5,
            vec![
                vs(&[0, 1]),
                vs(&[1, 2]),
                vs(&[2, 3]),
                vs(&[3, 0]),
                vs(&[0, 4]),
                vs(&[1, 4]),
            ],
        );
        let r = search_connex(&h, vs(&[0, 1, 2, 3]), Objective::MinimizeWidth).unwrap();
        assert!((r.score - 1.5).abs() < 1e-6, "got {}", r.score);
    }

    #[test]
    fn path4_budget_search_finds_two_level_decomposition() {
        // Example 10 with n = 4: P(x1..x5), V_b = {x1, x5}. Under a space
        // budget |D|^2 the paper's decomposition {x1,x2,x4,x5} → {x2,x3,x4}
        // achieves height 2·log_|D| τ; crucially it has ≤ 2 delayed levels.
        let h = Hypergraph::new(5, (0..4).map(|i| vs(&[i, i + 1])).collect());
        let c = vs(&[0, 4]);
        let r = search_connex(
            &h,
            c,
            Objective::MinimizeHeightUnderBudget { budget_exp: 2.0 },
        )
        .unwrap();
        r.td.validate_connex(&h, c).unwrap();
        // With budget exponent 2 every bag of the paper's decomposition has
        // ρ* = 2 ⇒ zero delay needed, height 0. The search must find some
        // zero-height decomposition.
        let w = decomposition_widths(&h, &r.td, &r.delta).unwrap();
        assert!(w.delta_height < 1e-6, "height {}", w.delta_height);
        assert!(w.delta_width <= 2.0 + 1e-6);
    }

    #[test]
    fn path4_tight_budget_forces_delay() {
        let h = Hypergraph::new(5, (0..4).map(|i| vs(&[i, i + 1])).collect());
        let c = vs(&[0, 4]);
        let r = search_connex(
            &h,
            c,
            Objective::MinimizeHeightUnderBudget { budget_exp: 1.2 },
        )
        .unwrap();
        let w = decomposition_widths(&h, &r.td, &r.delta).unwrap();
        assert!(w.delta_width <= 1.2 + 1e-6, "budget respected");
        assert!(w.delta_height > 0.0, "tight budget needs delay");
    }

    #[test]
    fn boolean_view_gets_root_only() {
        let h = Hypergraph::new(2, vec![vs(&[0, 1])]);
        let r = search_connex(&h, vs(&[0, 1]), Objective::MinimizeWidth).unwrap();
        assert_eq!(r.td.len(), 1);
    }

    #[test]
    fn larger_query_uses_heuristics() {
        // 9-cycle, full enumeration: 8 free vars triggers the heuristic
        // path; just verify a valid decomposition is produced.
        let h = Hypergraph::new(9, (0..9).map(|i| vs(&[i, (i + 1) % 9])).collect());
        let r = search_connex(&h, VarSet::EMPTY, Objective::MinimizeWidth).unwrap();
        r.td.validate_connex(&h, VarSet::EMPTY).unwrap();
        assert!(r.score <= 2.0 + 1e-6, "cycle fhw ≤ 2, got {}", r.score);
    }
}
