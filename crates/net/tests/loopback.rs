//! Loopback acceptance: a fleet of real shard servers on 127.0.0.1 behind
//! a [`Router`] must be observationally identical to an in-process
//! [`ShardedEngine`] under the same partition spec — tuple for tuple,
//! order included — across strategies, adornment patterns, and
//! interleaved updates. The consistency machinery (per-request epoch
//! vectors, typed remote errors) is exercised against the same fleet.

use std::sync::Arc;
use std::time::Duration;

use cqc_common::frame::{code, ServePriority};
use cqc_common::{AnswerBlock, CqcError};
use cqc_engine::{
    spec_for_view, BlockService, Engine, Policy, ShardedBlocks, ShardedEngine, ShardedEngineConfig,
};
use cqc_net::server::ServerHandle;
use cqc_net::{ClientConfig, Deadline, NetServer, NetServerConfig, Router, ServeMode, ShardClient};
use cqc_query::parser::parse_adorned;
use cqc_storage::{Database, Delta, PartitionSpec, Partitioning};

const QUERY: &str = "Q(x,y,z) :- R(x,y), S(y,z), T(z,x)";
const SHARDS: usize = 4;

fn triangle_db(seed: u64) -> Database {
    let mut rng = cqc_workload::rng(seed);
    let mut db = Database::new();
    for name in ["R", "S", "T"] {
        db.add(cqc_workload::uniform_relation(&mut rng, name, 2, 120, 12))
            .unwrap();
    }
    db
}

/// Fast-failing client config: tests should never sit out the default
/// 5-second socket timeout.
fn client_config() -> ClientConfig {
    ClientConfig {
        io_timeout: Some(std::time::Duration::from_secs(10)),
        ..ClientConfig::default()
    }
}

/// One real shard server per slice of `db` under `spec`, on OS-chosen
/// loopback ports. Handles shut the servers down on drop.
fn spawn_fleet(db: &Database, spec: &PartitionSpec) -> (Vec<ServerHandle>, Vec<String>) {
    let part = Partitioning::new(spec.clone(), SHARDS).unwrap();
    let mut servers = Vec::with_capacity(SHARDS);
    let mut addrs = Vec::with_capacity(SHARDS);
    for slice in part.split_database(db).unwrap() {
        let handle = NetServer::spawn(
            Arc::new(Engine::new(slice)),
            "127.0.0.1:0",
            NetServerConfig::default(),
        )
        .unwrap();
        addrs.push(handle.addr().to_string());
        servers.push(handle);
    }
    (servers, addrs)
}

/// The in-process reference under the identical spec and shard count.
fn local_sharded(db: &Database, spec: &PartitionSpec, pattern: &str, token: &str) -> ShardedEngine {
    let sharded = ShardedEngine::new(
        db.clone(),
        spec.clone(),
        ShardedEngineConfig {
            shards: SHARDS,
            ..ShardedEngineConfig::default()
        },
    )
    .unwrap();
    let view = parse_adorned(QUERY, pattern).unwrap();
    sharded
        .register("v", view, Policy::parse(token).unwrap())
        .unwrap();
    sharded
}

/// The local merged streams, one flat tuple vector per request.
fn local_streams(sharded: &ShardedEngine, bounds: &[Vec<u64>]) -> Vec<Vec<u64>> {
    let mut streams: Vec<Vec<u64>> = vec![Vec::new(); bounds.len()];
    sharded
        .serve_stream_with("v", bounds, &mut ShardedBlocks::new(), |i, block| {
            streams[i].extend_from_slice(block.values());
        })
        .unwrap();
    streams
}

/// The remote merged streams through the router, same shape.
fn remote_streams(router: &Router, bounds: &[Vec<u64>]) -> Vec<Vec<u64>> {
    let mut block = AnswerBlock::new();
    bounds
        .iter()
        .map(|bound| {
            block.reset();
            router.serve_merged("v", bound, &mut block).unwrap();
            block.values().to_vec()
        })
        .collect()
}

/// Every combination of `nb` bound values over the generator domain,
/// stepped so the grid stays small.
fn bound_grid(nb: usize) -> Vec<Vec<u64>> {
    let mut grid: Vec<Vec<u64>> = vec![vec![]];
    for _ in 0..nb {
        grid = grid
            .iter()
            .flat_map(|b| {
                (0..12u64).step_by(3).map(move |v| {
                    let mut b2 = b.clone();
                    b2.push(v);
                    b2
                })
            })
            .collect();
    }
    grid
}

/// The acceptance property: the remote merged stream is tuple-for-tuple
/// identical — exact lexicographic order included — to the local sharded
/// stream, for every strategy token and adornment pattern.
#[test]
fn remote_stream_matches_local_sharded_across_strategies() {
    let db = triangle_db(41);
    for pattern in ["bfb", "bff", "fff"] {
        let view = parse_adorned(QUERY, pattern).unwrap();
        let spec = spec_for_view(&view, &db);
        let bounds = bound_grid(pattern.matches('b').count());
        for token in ["tau:2", "materialize", "direct", "factorized", "auto"] {
            let sharded = local_sharded(&db, &spec, pattern, token);
            let (_servers, addrs) = spawn_fleet(&db, &spec);
            let router = Router::connect(&addrs, spec.clone(), client_config()).unwrap();
            router.register_view("v", QUERY, pattern, token).unwrap();

            let local = local_streams(&sharded, &bounds);
            let remote = remote_streams(&router, &bounds);
            assert_eq!(
                remote, local,
                "{token} pattern {pattern}: remote stream diverged"
            );
            assert!(
                local.iter().map(Vec::len).sum::<usize>() > 0,
                "{token} pattern {pattern}: workload served nothing — test is vacuous"
            );
        }
    }
}

/// Interleaved updates through both paths: after every delta the remote
/// stream must still equal the local stream, and the router's flattened
/// epoch view must track the sharded engine's version vector exactly.
#[test]
fn interleaved_updates_keep_remote_and_local_aligned() {
    let db = triangle_db(97);
    let view = parse_adorned(QUERY, "bff").unwrap();
    let spec = spec_for_view(&view, &db);
    let bounds = bound_grid(1);

    let sharded = local_sharded(&db, &spec, "bff", "tau:2");
    let (_servers, addrs) = spawn_fleet(&db, &spec);
    let router = Router::connect(&addrs, spec.clone(), client_config()).unwrap();
    router.register_view("v", QUERY, "bff", "tau:2").unwrap();
    assert_eq!(router.version(), sharded.version());

    let mut rng = cqc_workload::rng(5);
    let mut saw_removal = false;
    for round in 0..3u64 {
        let delta = cqc_workload::mixed_delta(&mut rng, &db, &["R", "S", "T"], 3, 2);
        saw_removal |= delta.remove_groups().any(|(_, ts)| !ts.is_empty());
        sharded.update(&delta).unwrap();
        let epochs = router.apply_update(&delta).unwrap();
        assert_eq!(epochs, sharded.version(), "round {round}: epochs diverged");

        let local = local_streams(&sharded, &bounds);
        let remote = remote_streams(&router, &bounds);
        assert_eq!(remote, local, "round {round}: stream diverged after delta");
    }
    assert!(saw_removal, "no round carried a removal — test is vacuous");
}

/// The delete path over the wire: removing a witness tuple through the
/// router must shrink the remote stream exactly as the in-process sharded
/// engine shrinks — the removed answers vanish from both, the streams stay
/// tuple-for-tuple equal, and the epoch vectors advance in lockstep.
#[test]
fn remote_deletes_match_local_and_advance_epochs() {
    let db = triangle_db(67);
    let view = parse_adorned(QUERY, "fff").unwrap();
    let spec = spec_for_view(&view, &db);
    let bounds = vec![vec![]];

    let sharded = local_sharded(&db, &spec, "fff", "tau:2");
    let (_servers, addrs) = spawn_fleet(&db, &spec);
    let router = Router::connect(&addrs, spec.clone(), client_config()).unwrap();
    router.register_view("v", QUERY, "fff", "tau:2").unwrap();

    let before = local_streams(&sharded, &bounds);
    assert_eq!(remote_streams(&router, &bounds), before);
    let answers_before = before[0].len() / 3;
    assert!(
        answers_before > 0,
        "no triangles to delete — test is vacuous"
    );

    // Delete the R-edge of the first witness triangle (x, y, z) → R(x, y):
    // every triangle through that edge must disappear from both paths.
    let mut delta = Delta::new();
    delta.remove("R", vec![before[0][0], before[0][1]]);
    let pre_version = sharded.version();
    sharded.update(&delta).unwrap();
    let epochs = router.apply_update(&delta).unwrap();
    assert_eq!(epochs, sharded.version(), "epochs diverged after delete");
    assert!(
        epochs.iter().zip(&pre_version).all(|(a, b)| a >= b)
            && epochs.iter().zip(&pre_version).any(|(a, b)| a > b),
        "delete must advance the epoch vector monotonically: {pre_version:?} -> {epochs:?}"
    );

    let local = local_streams(&sharded, &bounds);
    let remote = remote_streams(&router, &bounds);
    assert_eq!(remote, local, "stream diverged after delete");
    assert!(
        local[0].len() / 3 < answers_before,
        "deleting a witness edge must shrink the answer stream"
    );

    // Deleting a tuple the database does not hold is a no-op on both
    // paths: epochs hold still and the streams are unchanged.
    let mut noop = Delta::new();
    noop.remove("R", vec![900, 901]);
    sharded.update(&noop).unwrap();
    let epochs_after = router.apply_update(&noop).unwrap();
    assert_eq!(epochs_after, epochs, "no-op delete must not bump epochs");
    assert_eq!(remote_streams(&router, &bounds), local);
}

/// The deadline-tail compatibility pin: a serve carrying a priority
/// class and a generous deadline budget on the wire must produce the
/// *identical* merged stream as the tail-less v1 serve and the local
/// sharded engine — deadline propagation changes when work is shed,
/// never what an admitted serve answers. An already-expired budget must
/// come back as a typed [`code::DEADLINE`] shed, not a hang or a silent
/// partial stream.
#[test]
fn deadline_tailed_serves_match_tailless_and_local() {
    let db = triangle_db(29);
    let view = parse_adorned(QUERY, "bff").unwrap();
    let spec = spec_for_view(&view, &db);
    let bounds = bound_grid(1);

    let sharded = local_sharded(&db, &spec, "bff", "tau:2");
    let (_servers, addrs) = spawn_fleet(&db, &spec);
    let router = Router::connect(&addrs, spec.clone(), client_config()).unwrap();
    router.register_view("v", QUERY, "bff", "tau:2").unwrap();

    let local = local_streams(&sharded, &bounds);
    assert!(
        local.iter().map(Vec::len).sum::<usize>() > 0,
        "workload served nothing — test is vacuous"
    );
    for priority in [
        ServePriority::Interactive,
        ServePriority::Batch,
        ServePriority::Internal,
    ] {
        let tailed: Vec<Vec<u64>> = bounds
            .iter()
            .map(|bound| {
                let mut block = AnswerBlock::new();
                router
                    .serve_with_opts(
                        "v",
                        bound,
                        &mut block,
                        ServeMode::Strict,
                        priority,
                        Some(Deadline::within(Some(Duration::from_secs(30)))),
                    )
                    .unwrap();
                block.values().to_vec()
            })
            .collect();
        assert_eq!(
            tailed, local,
            "{priority:?}: deadline-tailed stream diverged from the local one"
        );
    }

    // Straight at one shard: the tailed serve answers byte-for-byte what
    // its tail-less (v1-wire) twin answers, epochs included.
    let mut client = ShardClient::new(addrs[0].clone(), client_config());
    let mut plain = AnswerBlock::new();
    let plain_reply = client.serve_with_sink("v", &bounds[0], &mut plain).unwrap();
    let mut tailed = AnswerBlock::new();
    let tailed_reply = client
        .serve_with_sink_opts(
            "v",
            &bounds[0],
            &mut tailed,
            ServePriority::Batch,
            Deadline::within(Some(Duration::from_secs(30))),
        )
        .unwrap();
    assert_eq!(tailed_reply, plain_reply, "reply metadata diverged");
    assert_eq!(tailed.values(), plain.values(), "answer stream diverged");

    // A budget that is already gone is shed before enumeration, typed.
    let err = client
        .serve_with_sink_opts(
            "v",
            &bounds[0],
            &mut AnswerBlock::new(),
            ServePriority::Interactive,
            Deadline::within(Some(Duration::ZERO)),
        )
        .unwrap_err();
    assert!(
        matches!(
            err,
            CqcError::Protocol {
                code: code::DEADLINE,
                ..
            }
        ),
        "expected a typed DEADLINE shed, got {err}"
    );
}

/// An out-of-band writer (a client updating one shard directly, behind
/// the router's back) must surface as a typed [`code::EPOCH_MISMATCH`] on
/// the next serve — never as a silent merge of skewed versions — and
/// [`Router::health_check`] re-syncs.
#[test]
fn out_of_band_update_raises_epoch_mismatch_until_resync() {
    let db = triangle_db(11);
    let view = parse_adorned(QUERY, "bff").unwrap();
    let spec = spec_for_view(&view, &db);

    let (_servers, addrs) = spawn_fleet(&db, &spec);
    let router = Router::connect(&addrs, spec.clone(), client_config()).unwrap();
    router.register_view("v", QUERY, "bff", "direct").unwrap();

    // Sneak a delta into shard 0 without telling the router.
    let mut sneak = ShardClient::new(addrs[0].clone(), client_config());
    let mut delta = Delta::new();
    delta.insert("R", vec![100, 101]);
    sneak.update(&delta).unwrap();

    let mut block = AnswerBlock::new();
    let err = router.serve_merged("v", &[0], &mut block).unwrap_err();
    match err {
        CqcError::Protocol { code: c, detail } => {
            assert_eq!(c, code::EPOCH_MISMATCH, "wrong code: {detail}");
            assert!(
                detail.contains("shard 0"),
                "detail must name the shard: {detail}"
            );
        }
        other => panic!("expected an epoch mismatch, got {other}"),
    }

    // Re-sync, then the fleet serves again.
    router.health_check().unwrap();
    block.reset();
    router.serve_merged("v", &[0], &mut block).unwrap();
}

/// Remote failures keep their types across the wire: an unknown view, a
/// bad strategy token, and an unparseable query all come back as the same
/// [`CqcError`] variants a local engine would raise.
#[test]
fn remote_errors_stay_typed() {
    let db = triangle_db(23);
    let view = parse_adorned(QUERY, "bff").unwrap();
    let spec = spec_for_view(&view, &db);
    let (_servers, addrs) = spawn_fleet(&db, &spec);

    // Unknown view, straight at a shard server.
    let mut client = ShardClient::new(addrs[0].clone(), client_config());
    let mut block = AnswerBlock::new();
    let err = client.serve_block("nope", &[], &mut block).unwrap_err();
    // The variant survives the wire; the detail string is the remote
    // display text (lossy by design), so match on variant + substring.
    assert!(
        matches!(err, CqcError::UnknownView(ref v) if v.contains("nope")),
        "expected UnknownView, got {err}"
    );

    // Unknown view through the router (rejected before any wire traffic).
    let router = Router::connect(&addrs, spec.clone(), client_config()).unwrap();
    let err = router.serve_merged("nope", &[], &mut block).unwrap_err();
    assert!(matches!(err, CqcError::UnknownView(_)), "got {err}");

    // A bad strategy token fails remotely as the same Config error the
    // local Policy parser raises.
    let err = router
        .register_view("v", QUERY, "bff", "bogus")
        .unwrap_err();
    assert!(matches!(err, CqcError::Config(_)), "got {err}");

    // An unparseable query is refused by the router locally.
    let err = router
        .register_view("v", "this is not a query", "bff", "auto")
        .unwrap_err();
    assert!(matches!(err, CqcError::Parse(_)), "got {err}");
}

/// Arity-0 answer streams (a fully-bound probe) survive the wire: chunk
/// frames carry explicit counts, so "yes, N times" round-trips even
/// though there are no values to send.
#[test]
fn fully_bound_probes_serve_remotely() {
    let db = triangle_db(41);
    let view = parse_adorned(QUERY, "bbb").unwrap();
    let spec = spec_for_view(&view, &db);
    let bounds = bound_grid(3);

    let sharded = local_sharded(&db, &spec, "bbb", "tau:2");
    let (_servers, addrs) = spawn_fleet(&db, &spec);
    let router = Router::connect(&addrs, spec.clone(), client_config()).unwrap();
    router.register_view("v", QUERY, "bbb", "tau:2").unwrap();

    let mut local_counts = Vec::with_capacity(bounds.len());
    sharded
        .serve_stream_with("v", &bounds, &mut ShardedBlocks::new(), |_, block| {
            local_counts.push(block.len());
        })
        .unwrap();
    let mut block = AnswerBlock::new();
    let remote_counts: Vec<usize> = bounds
        .iter()
        .map(|bound| {
            block.reset();
            router.serve_merged("v", bound, &mut block).unwrap()
        })
        .collect();
    assert_eq!(remote_counts, local_counts);
    assert!(
        local_counts.iter().sum::<usize>() > 0,
        "no witnesses in the grid — test is vacuous"
    );
}
