//! Replica-group acceptance: the fault-tolerance contracts, end to end.
//!
//! * R = 2 replication: killing one replica per shard must leave every
//!   serve exact (tuple-for-tuple against an in-process oracle), and
//!   killing a whole group must produce a *typed* strict failure and a
//!   correct coverage bitmap in degraded mode — never a silent partial
//!   answer.
//! * Connecting reports every unreachable address in one error, so a
//!   multi-replica outage is diagnosed in one attempt.
//! * A retried update under an epoch-vector precondition applies exactly
//!   once even when the first attempt's transport dies after the apply —
//!   the ambiguous-I/O reconciliation pinned against a scripted shard.

use std::io::Write;
use std::net::TcpListener;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use cqc_common::frame::{self, code, FrameKind, FrameReader, PayloadWriter};
use cqc_common::{AnswerBlock, CqcError};
use cqc_engine::{spec_for_view, BlockService, Engine};
use cqc_net::{
    protocol, BreakerConfig, ClientConfig, NetServer, NetServerConfig, ReplicaGroup, RetryPolicy,
    Router, ServeMode,
};
use cqc_storage::{Database, Delta, Partitioning};

const QUERY: &str = "Q(x,y,z) :- R(x,y), S(y,z), T(z,x)";
const SHARDS: usize = 2;
const REPLICAS: usize = 2;

fn triangle_db(seed: u64) -> Database {
    let mut rng = cqc_workload::rng(seed);
    let mut db = Database::new();
    for name in ["R", "S", "T"] {
        db.add(cqc_workload::uniform_relation(&mut rng, name, 2, 120, 12))
            .unwrap();
    }
    db
}

fn fast_client() -> ClientConfig {
    ClientConfig {
        connect_attempts: 2,
        backoff_base: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(10),
        io_timeout: Some(Duration::from_millis(500)),
        refused_retries: 0,
        jitter_seed: 7,
    }
}

fn fast_policy() -> RetryPolicy {
    RetryPolicy {
        attempts: 4,
        backoff_base: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(10),
        request_deadline: Some(Duration::from_secs(5)),
        hedge_after: None,
        ..RetryPolicy::default()
    }
}

/// Kills one replica per shard, then the whole of shard 1: serves must
/// stay exact while each shard keeps a live replica, then fail typed
/// (strict) or report the missing shard honestly (degraded).
#[test]
fn replicated_fleet_survives_kills_and_degrades_typed() {
    let db = triangle_db(11);
    let view = cqc_query::parser::parse_adorned(QUERY, "fff").unwrap();
    let spec = spec_for_view(&view, &db);
    let part = Partitioning::new(spec.clone(), SHARDS).unwrap();
    let slices = part.split_database(&db).unwrap();

    let oracle = Engine::new(db.clone());
    (&oracle as &dyn BlockService)
        .register_view("v", QUERY, "fff", "auto")
        .unwrap();
    let shard0_oracle = Engine::new(slices[0].clone());
    (&shard0_oracle as &dyn BlockService)
        .register_view("v", QUERY, "fff", "auto")
        .unwrap();

    let mut servers: Vec<Vec<Option<_>>> = Vec::new();
    let mut groups: Vec<Vec<String>> = Vec::new();
    for slice in &slices {
        let mut row = Vec::new();
        let mut addrs = Vec::new();
        for _ in 0..REPLICAS {
            let handle = NetServer::spawn(
                Arc::new(Engine::new(slice.clone())),
                "127.0.0.1:0",
                NetServerConfig::default(),
            )
            .unwrap();
            addrs.push(handle.addr().to_string());
            row.push(Some(handle));
        }
        servers.push(row);
        groups.push(addrs);
    }
    let router = Router::connect_replicated(
        &groups,
        spec,
        fast_client(),
        BreakerConfig::default(),
        fast_policy(),
    )
    .unwrap();
    router.register_view("v", QUERY, "fff", "auto").unwrap();

    let serve = |router: &Router| -> (usize, Vec<u64>) {
        let mut block = AnswerBlock::new();
        let n = router.serve_merged("v", &[], &mut block).unwrap();
        (n, block.values().to_vec())
    };
    let mut want = AnswerBlock::new();
    (&oracle as &dyn BlockService)
        .serve_into("v", &[], &mut want)
        .unwrap();

    // Healthy fleet: exact.
    let (_, healthy) = serve(&router);
    assert_eq!(healthy, want.values(), "healthy fleet diverged");

    // One replica per shard dies: still exact, via the survivors.
    for row in &mut servers {
        if let Some(mut h) = row[0].take() {
            h.shutdown();
        }
    }
    let (_, after_kills) = serve(&router);
    assert_eq!(after_kills, want.values(), "failover serve diverged");
    assert!(
        router.fleet_stats().groups.failovers > 0,
        "failover counter never moved"
    );

    // Shard 1 loses its last replica: strict mode fails typed…
    if let Some(mut h) = servers[1][1].take() {
        h.shutdown();
    }
    let err = router
        .serve_merged("v", &[], &mut AnswerBlock::new())
        .unwrap_err();
    match err {
        CqcError::Protocol { code: c, detail } => {
            assert!(
                c == code::SHARD_FAILED || c == code::DEADLINE,
                "outage must be typed, got code {c}: {detail}"
            );
            assert!(detail.contains("shard 1"), "must name the shard: {detail}");
        }
        other => panic!("whole-group outage must be a typed error, got {other}"),
    }

    // …and degraded mode answers exactly shard 0's slice, with the
    // missing shard in the coverage bitmap and a typed DEGRADED marker.
    let mut got = AnswerBlock::new();
    let report = router
        .serve_with_mode("v", &[], &mut got, ServeMode::DegradedOk)
        .unwrap();
    assert!(report.is_degraded());
    assert_eq!(report.coverage.missing(), vec![1]);
    assert_eq!(report.failures.len(), 1);
    let degraded = report.degraded_error().unwrap();
    assert!(
        matches!(
            degraded,
            CqcError::Protocol {
                code: code::DEGRADED,
                ..
            }
        ),
        "{degraded}"
    );
    let mut shard0_want = AnswerBlock::new();
    (&shard0_oracle as &dyn BlockService)
        .serve_into("v", &[], &mut shard0_want)
        .unwrap();
    assert_eq!(
        got.values(),
        shard0_want.values(),
        "degraded stream must be exactly the covered shards' answers"
    );
}

/// Connecting to a fleet with several dead replicas reports *all* of
/// them in one error — not just the first.
#[test]
fn connect_reports_every_unreachable_address() {
    // Live shard 0; two dead replica addresses for shard 1 (bind-then-
    // drop guarantees nothing listens there).
    let live = NetServer::spawn(
        Arc::new(Engine::new(triangle_db(5))),
        "127.0.0.1:0",
        NetServerConfig::default(),
    )
    .unwrap();
    let dead: Vec<String> = (0..2)
        .map(|_| {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        })
        .collect();

    let groups = vec![vec![live.addr().to_string()], dead.clone()];
    let err = Router::connect_replicated(
        &groups,
        cqc_storage::PartitionSpec::new(),
        fast_client(),
        BreakerConfig::default(),
        fast_policy(),
    )
    .unwrap_err();
    let msg = err.to_string();
    for addr in &dead {
        assert!(msg.contains(addr), "error must name {addr}: {msg}");
    }
    assert!(msg.contains("2 unreachable"), "must count the dead: {msg}");
}

/// The ambiguous-I/O idempotency pin: a scripted shard applies the
/// update, then kills the connection before replying. The retry under
/// the same epoch precondition is answered EPOCH_MISMATCH, the health
/// probe shows exactly one bump past the precondition, and the client
/// concludes the first attempt landed — the delta applies exactly once.
#[test]
fn ambiguous_update_retry_applies_exactly_once() {
    let apply_count = Arc::new(AtomicU64::new(0));
    let counted = Arc::clone(&apply_count);

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    std::thread::spawn(move || {
        // Scripted shard: epoch starts at 7; the first update applies and
        // then dies without a reply, later updates are checked against
        // the precondition for real.
        let mut epoch: u64 = 7;
        for stream in listener.incoming() {
            let Ok(mut stream) = stream else { continue };
            let mut frames = FrameReader::new();
            let mut w = PayloadWriter::new();
            while let Ok((kind, body)) = frames.read_frame(&mut stream) {
                match kind {
                    FrameKind::Health => {
                        protocol::encode_epoch_reply(&mut w, &[epoch]);
                        frame::write_frame(&mut stream, FrameKind::HealthOk, w.bytes()).unwrap();
                        stream.flush().unwrap();
                    }
                    FrameKind::Update => {
                        let (_, precondition) =
                            protocol::parse_update_preconditioned(body).unwrap();
                        let want = precondition.expect("the client must precondition retries");
                        if want != [epoch] {
                            protocol::encode_error(
                                &mut w,
                                &CqcError::Protocol {
                                    code: code::EPOCH_MISMATCH,
                                    detail: format!("at {epoch}, precondition {want:?}"),
                                },
                            );
                            frame::write_frame(&mut stream, FrameKind::Error, w.bytes()).unwrap();
                            stream.flush().unwrap();
                            continue;
                        }
                        // Apply, bump — and die before replying on the
                        // first apply (the ambiguous-I/O window).
                        epoch += 1;
                        if counted.fetch_add(1, Ordering::SeqCst) == 0 {
                            break; // drop the connection, no reply
                        }
                        protocol::encode_epoch_reply(&mut w, &[epoch]);
                        frame::write_frame(&mut stream, FrameKind::UpdateOk, w.bytes()).unwrap();
                        stream.flush().unwrap();
                    }
                    _ => break,
                }
            }
        }
    });

    let group = ReplicaGroup::new(
        0,
        &[addr],
        fast_client(),
        BreakerConfig::default(),
        fast_policy(),
    );
    let mut delta = Delta::new();
    delta.insert("R", vec![1, 2]);

    let epochs = group.update_preconditioned(&delta, &[7]).unwrap();
    assert_eq!(epochs, vec![8], "reconciled vector must be the bumped one");
    assert_eq!(
        apply_count.load(Ordering::SeqCst),
        1,
        "the delta must apply exactly once despite the transport death"
    );
    assert_eq!(group.stats().update_failures, 0, "the update succeeded");
}
