//! Fault injection: every way a fleet can misbehave must surface as a
//! *typed* error in bounded time — never a hang, never a silent partial
//! answer. Scripted fake shards (raw TCP speaking the frame codec) make
//! the failures deterministic: death mid-stream, a stalled server, an
//! overloaded server, a wrong protocol version, and a server-side
//! deadline are each provoked on purpose and asserted on by error code.

use std::io::Write;
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use cqc_common::frame::{self, code, FrameKind, FrameReader, PayloadWriter};
use cqc_common::{AnswerBlock, AnswerSink, CqcError};
use cqc_engine::{BlockService, Engine};
use cqc_net::{protocol, ClientConfig, NetServer, NetServerConfig, Router, ShardClient};
use cqc_storage::{Database, PartitionSpec, Relation};

/// A scripted fake shard: binds a loopback port, accepts one connection,
/// and hands it to `behavior`. The thread is detached — it dies with the
/// test process.
fn fake_shard(behavior: impl FnOnce(TcpStream) + Send + 'static) -> String {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    std::thread::spawn(move || {
        if let Ok((stream, _)) = listener.accept() {
            behavior(stream);
        }
    });
    addr
}

fn send(stream: &mut TcpStream, kind: FrameKind, payload: &PayloadWriter) {
    frame::write_frame(stream, kind, payload.bytes()).unwrap();
    stream.flush().unwrap();
}

/// Client config tuned for tests: fail fast, short backoffs.
fn fast_client() -> ClientConfig {
    ClientConfig {
        connect_attempts: 2,
        backoff_base: Duration::from_millis(5),
        backoff_cap: Duration::from_millis(20),
        io_timeout: Some(Duration::from_millis(500)),
        refused_retries: 1,
        jitter_seed: 0,
    }
}

fn tiny_db() -> Database {
    let mut db = Database::new();
    db.add(Relation::from_pairs(
        "R",
        vec![(1, 2), (2, 3), (3, 1), (1, 3), (2, 1)],
    ))
    .unwrap();
    db
}

/// A shard that answers health and register, streams half an answer, then
/// dies. The router must return a typed [`code::SHARD_FAILED`] naming the
/// shard — quickly, not after a hang.
#[test]
fn shard_death_mid_stream_is_typed_not_hung() {
    let addr = fake_shard(|mut stream| {
        let mut frames = FrameReader::new();
        let mut w = PayloadWriter::new();
        loop {
            let kind = match frames.read_frame(&mut stream) {
                Ok((k, _)) => k,
                Err(_) => return,
            };
            match kind {
                FrameKind::Health => {
                    protocol::encode_epoch_reply(&mut w, &[7]);
                    send(&mut stream, FrameKind::HealthOk, &w);
                }
                FrameKind::Register => {
                    protocol::encode_epoch_reply(&mut w, &[7]);
                    send(&mut stream, FrameKind::RegisterOk, &w);
                }
                FrameKind::Serve => {
                    // Half an answer stream, then death mid-serve.
                    let mut block = AnswerBlock::new();
                    block.push(&[1, 2]);
                    frame::encode_chunk(&mut w, &block, 0, 1);
                    send(&mut stream, FrameKind::Chunk, &w);
                    let _ = stream.shutdown(Shutdown::Both);
                    return;
                }
                _ => return,
            }
        }
    });

    let router = Router::connect(
        &[addr],
        PartitionSpec::new(), // R replicated → served by "shard 0" alone
        fast_client(),
    )
    .unwrap();
    router
        .register_view("v", "Q(x,y) :- R(x,y)", "ff", "direct")
        .unwrap();

    let t0 = Instant::now();
    let mut block = AnswerBlock::new();
    let err = router.serve_merged("v", &[], &mut block).unwrap_err();
    assert!(
        t0.elapsed() < Duration::from_secs(10),
        "partial failure took {:?} — that is a hang, not a typed error",
        t0.elapsed()
    );
    match err {
        CqcError::Protocol { code: c, detail } => {
            assert_eq!(c, code::SHARD_FAILED, "wrong code: {detail}");
            assert!(detail.contains("shard 0"), "must name the shard: {detail}");
        }
        other => panic!("expected SHARD_FAILED, got {other}"),
    }
}

/// Killing a *real* shard server under a live router: the next serve
/// fails fast with [`code::SHARD_FAILED`] instead of waiting forever on a
/// dead socket.
#[test]
fn killed_shard_server_fails_fast() {
    let db = tiny_db();
    let mut servers = Vec::new();
    let mut addrs = Vec::new();
    for _ in 0..2 {
        let handle = NetServer::spawn(
            Arc::new(Engine::new(db.clone())),
            "127.0.0.1:0",
            NetServerConfig::default(),
        )
        .unwrap();
        addrs.push(handle.addr().to_string());
        servers.push(handle);
    }
    let router = Router::connect(&addrs, PartitionSpec::new(), fast_client()).unwrap();
    router
        .register_view("v", "Q(x,y) :- R(x,y)", "ff", "direct")
        .unwrap();
    router
        .serve_merged("v", &[], &mut AnswerBlock::new())
        .unwrap();

    servers[0].shutdown();
    let t0 = Instant::now();
    let err = router
        .serve_merged("v", &[], &mut AnswerBlock::new())
        .unwrap_err();
    assert!(t0.elapsed() < Duration::from_secs(10), "{:?}", t0.elapsed());
    match err {
        CqcError::Protocol { code: c, detail } => {
            assert_eq!(c, code::SHARD_FAILED, "wrong code: {detail}");
            assert!(detail.contains("shard 0"), "must name the shard: {detail}");
        }
        other => panic!("expected SHARD_FAILED, got {other}"),
    }
}

/// A shard that accepts the request and then stalls forever: the client's
/// socket deadline fires and bounds the wait.
#[test]
fn slow_shard_hits_the_client_deadline() {
    let addr = fake_shard(|mut stream| {
        let mut frames = FrameReader::new();
        // Read the request, then stall well past the client's timeout.
        let _ = frames.read_frame(&mut stream);
        std::thread::sleep(Duration::from_secs(5));
    });

    let mut client = ShardClient::new(addr, fast_client());
    let t0 = Instant::now();
    let err = client.health().unwrap_err();
    let elapsed = t0.elapsed();
    assert!(
        elapsed >= Duration::from_millis(400) && elapsed < Duration::from_secs(4),
        "deadline did not bound the wait: {elapsed:?}"
    );
    assert!(matches!(err, CqcError::Io(_)), "expected Io, got {err}");
}

/// A zero deadline on the server fires before the first answer is pushed
/// and comes back as a typed [`code::DEADLINE`] error frame mid-protocol.
#[test]
fn server_deadline_fires_as_a_typed_error() {
    let server = NetServer::spawn(
        Arc::new(Engine::new(tiny_db())),
        "127.0.0.1:0",
        NetServerConfig {
            request_deadline: Some(Duration::ZERO),
            ..NetServerConfig::default()
        },
    )
    .unwrap();
    let mut client = ShardClient::new(server.addr().to_string(), fast_client());
    client
        .register(&protocol::RegisterReq {
            name: "v".into(),
            query: "Q(x,y) :- R(x,y)".into(),
            pattern: "ff".into(),
            strategy: "direct".into(),
        })
        .unwrap();
    let err = client
        .serve_block("v", &[], &mut AnswerBlock::new())
        .unwrap_err();
    match err {
        CqcError::Protocol { code: c, detail } => {
            assert_eq!(c, code::DEADLINE, "wrong code: {detail}");
        }
        other => panic!("expected DEADLINE, got {other}"),
    }
    // The connection stays usable after a typed error: health still works.
    client.health().unwrap();
}

/// With the in-flight gate at zero, every serve is refused; the client
/// retries its bounded number of times and then surfaces the typed
/// [`code::REFUSED`] backpressure error.
#[test]
fn overloaded_server_refuses_with_typed_backpressure() {
    let server = NetServer::spawn(
        Arc::new(Engine::new(tiny_db())),
        "127.0.0.1:0",
        NetServerConfig {
            max_inflight: 0,
            ..NetServerConfig::default()
        },
    )
    .unwrap();
    let mut client = ShardClient::new(server.addr().to_string(), fast_client());
    // Register is not gated — only serve consumes an in-flight slot.
    client
        .register(&protocol::RegisterReq {
            name: "v".into(),
            query: "Q(x,y) :- R(x,y)".into(),
            pattern: "ff".into(),
            strategy: "direct".into(),
        })
        .unwrap();
    let err = client
        .serve_block("v", &[], &mut AnswerBlock::new())
        .unwrap_err();
    match err {
        CqcError::Protocol { code: c, detail } => {
            assert_eq!(c, code::REFUSED, "wrong code: {detail}");
        }
        other => panic!("expected REFUSED, got {other}"),
    }
}

/// A frame with the wrong protocol version is answered with a typed
/// [`code::VERSION_MISMATCH`] error frame, then the connection closes —
/// the server never guesses at an unknown wire format.
#[test]
fn wrong_protocol_version_is_rejected() {
    let server = NetServer::spawn(
        Arc::new(Engine::new(tiny_db())),
        "127.0.0.1:0",
        NetServerConfig::default(),
    )
    .unwrap();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    // len=2 (version + kind), version=99, kind=Health.
    stream.write_all(&2u32.to_le_bytes()).unwrap();
    stream.write_all(&[99, 0x04]).unwrap();
    stream.flush().unwrap();

    let mut frames = FrameReader::new();
    let (kind, body) = frames.read_frame(&mut stream).unwrap();
    assert_eq!(kind, FrameKind::Error);
    let err = protocol::parse_error(body).unwrap();
    match err {
        CqcError::Protocol { code: c, detail } => {
            assert_eq!(c, code::VERSION_MISMATCH, "wrong code: {detail}");
        }
        other => panic!("expected VERSION_MISMATCH, got {other}"),
    }
}
