//! The one backoff implementation for `cqc-net`.
//!
//! Every retry loop in the crate — the client's connect/refusal retries,
//! the replica group's failover loop — waits according to the same
//! schedule: capped exponential backoff (`base * 2^attempt`, capped at
//! `cap`) scaled into `[50%, 100%)` by a deterministic splitmix64-style
//! jitter. There is no `rand` anywhere in `cqc-net`: the jitter is a
//! pure function of `(seed, attempt)`, so equal seeds reproduce equal
//! schedules in tests while distinct seeds de-lockstep a fleet whose
//! members fail together.
//!
//! Seeds follow a single convention, [`lane_seed`]: a backoff *lane* is
//! one independent retry loop, addressed by `(shard, lane)` under a
//! fleet-wide base seed. Replica clients take lanes `0..R`; a shard
//! group's failover loop takes the reserved [`FAILOVER_LANE`].

use std::time::Duration;

/// The reserved lane for a shard group's failover loop, chosen far above
/// any plausible replica index so group-level and per-replica schedules
/// never collide under [`lane_seed`].
pub const FAILOVER_LANE: u64 = 0xFFFF_FFFF;

/// Derives the jitter seed for one backoff lane: `(shard, lane)` under a
/// fleet-wide `base` seed. Distinct `(shard, lane)` pairs yield distinct
/// seeds (the pair is packed into disjoint halves of a word before the
/// XOR), so no two retry loops in a fleet share a schedule, while the
/// whole fleet stays reproducible from `base` alone.
pub fn lane_seed(base: u64, shard: usize, lane: u64) -> u64 {
    base ^ (((shard as u64) << 32) | lane)
}

/// A backoff schedule: base, cap, and jitter seed bundled so call sites
/// name the policy once and ask only for [`Backoff::delay`].
#[derive(Debug, Clone, Copy)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
    seed: u64,
}

impl Backoff {
    /// A schedule starting at `base`, doubling per attempt, capped at
    /// `cap` (before jitter), jittered deterministically by `seed`.
    pub fn new(base: Duration, cap: Duration, seed: u64) -> Backoff {
        Backoff { base, cap, seed }
    }

    /// The wait before retry number `attempt` (0-based).
    pub fn delay(&self, attempt: u32) -> Duration {
        jittered_backoff(self.base, self.cap, self.seed, attempt)
    }
}

/// Capped exponential backoff with deterministic jitter: the classic
/// `base * 2^attempt` capped at `cap`, then scaled into `[50%, 100%)` by
/// a splitmix64-style mix of `(seed, attempt)`. Pure function of its
/// inputs — reproducible in tests, de-synchronized across a fleet by
/// distinct seeds.
pub fn jittered_backoff(base: Duration, cap: Duration, seed: u64, attempt: u32) -> Duration {
    let exp = base.saturating_mul(1u32 << attempt.min(16)).min(cap);
    let mut z = seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(u64::from(attempt) + 1);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    let frac = 512 + (z % 512); // 1024ths: [0.5, 1.0)
    Duration::from_nanos((exp.as_nanos() as u64).saturating_mul(frac) / 1024)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_jitter_is_deterministic_and_bounded() {
        let base = Duration::from_millis(10);
        let cap = Duration::from_millis(200);
        for seed in [0u64, 1, 7, 1 << 40] {
            for attempt in 0..8u32 {
                let a = jittered_backoff(base, cap, seed, attempt);
                let b = jittered_backoff(base, cap, seed, attempt);
                assert_eq!(a, b, "same (seed, attempt) must reproduce");
                let exp = base.saturating_mul(1u32 << attempt.min(16)).min(cap);
                assert!(
                    a >= exp / 2 && a < exp,
                    "jitter in [exp/2, exp): {a:?} vs {exp:?}"
                );
            }
        }
        // Distinct seeds de-lockstep: two "shards" retrying at the same
        // attempt numbers do not share a backoff sequence.
        let seq = |seed| -> Vec<Duration> {
            (0..6)
                .map(|a| jittered_backoff(base, cap, seed, a))
                .collect()
        };
        assert_ne!(seq(0), seq(1));
    }

    #[test]
    fn backoff_cap_holds_under_jitter() {
        let base = Duration::from_millis(50);
        let cap = Duration::from_millis(80);
        for attempt in 0..32u32 {
            assert!(jittered_backoff(base, cap, 9, attempt) < cap);
        }
    }

    #[test]
    fn the_struct_matches_the_free_function() {
        let b = Backoff::new(Duration::from_millis(3), Duration::from_millis(40), 11);
        for attempt in 0..10u32 {
            assert_eq!(
                b.delay(attempt),
                jittered_backoff(
                    Duration::from_millis(3),
                    Duration::from_millis(40),
                    11,
                    attempt
                )
            );
        }
    }

    #[test]
    fn lane_seeds_are_distinct_per_lane_and_shard() {
        let mut seen = std::collections::HashSet::new();
        for shard in 0..8usize {
            for lane in (0..4u64).chain([FAILOVER_LANE]) {
                assert!(
                    seen.insert(lane_seed(42, shard, lane)),
                    "seed collision at shard {shard} lane {lane}"
                );
            }
        }
        // The same (shard, lane) under the same base reproduces.
        assert_eq!(lane_seed(42, 3, 1), lane_seed(42, 3, 1));
        // A different fleet-wide base shifts every lane.
        assert_ne!(lane_seed(42, 3, 1), lane_seed(43, 3, 1));
    }
}
