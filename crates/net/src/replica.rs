//! Replica groups: R independent servers per shard, one healthy answer.
//!
//! The paper's representations are read-heavy and deterministic — two
//! replicas at the same epoch vector serve byte-identical streams — so a
//! shard's availability story is simply "ask another replica". This
//! module is that story, made precise:
//!
//! * **[`RetryPolicy`]** — a budgeted failover loop: capped exponential
//!   backoff with deterministic jitter (the crate-wide schedule in
//!   [`crate::backoff`], on the group's reserved failover lane; no
//!   `rand` in `cqc-net`), every wait capped by the *remaining* request
//!   deadline so retries can never overrun what the caller budgeted, and
//!   an optional hedge: if the primary replica has not answered within
//!   [`RetryPolicy::hedge_after`], the same request is launched on the
//!   next healthy replica and the first completion wins.
//! * **Mid-stream failover with prefix resume** — answers stream into
//!   the caller's block as chunks arrive, so a replica that dies
//!   mid-stream leaves a merged prefix behind. The next attempt replays
//!   the stream and *verifies* the overlap tuple-by-tuple against that
//!   prefix (the sorted-order cursor makes the comparison exact) instead
//!   of re-appending it; a verified prefix plus the live suffix equals
//!   the live replica's complete stream, so correctness never depends on
//!   the dead replica. Any overlap divergence discards the prefix and
//!   restarts clean.
//! * **Per-replica staleness** — a reply's epoch vector is checked
//!   against the group's expectation; a lagging replica (it missed an
//!   update its sibling applied) is *skipped*, not served stale, and not
//!   penalized on its breaker — it is healthy, just behind.
//! * **Per-replica [`CircuitBreaker`]s** — transport failures count
//!   against the replica's breaker, so a dead replica stops eating
//!   deadline budget after a few requests and is re-probed only after a
//!   cooldown.

use cqc_common::error::Result;
use cqc_common::frame::{code, ServePriority};
use cqc_common::{AnswerBlock, AnswerSink, CqcError, Value};
use cqc_storage::{Delta, Epoch};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use crate::backoff::{lane_seed, Backoff, FAILOVER_LANE};
use crate::breaker::{BreakerConfig, BreakerState, BreakerTransitions, CircuitBreaker};
use crate::budget::{RetryBudget, RetryBudgetConfig};
use crate::client::{ClientConfig, ShardClient};
use crate::protocol::RegisterReq;

/// The failover budget for one shard's serve attempt.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Serve attempts per request across the shard's replicas (≥ 1).
    pub attempts: u32,
    /// First inter-attempt backoff; doubles per attempt.
    pub backoff_base: Duration,
    /// Backoff ceiling (before jitter scales into `[50%, 100%)`).
    pub backoff_cap: Duration,
    /// Wall-time budget for the whole request, retries and backoffs
    /// included; `None` is unbounded. Attempt socket timeouts are capped
    /// by what remains of this budget.
    pub request_deadline: Option<Duration>,
    /// If the primary replica has not completed within this, hedge the
    /// request on the next healthy replica (first completion wins).
    /// `None` disables hedging.
    pub hedge_after: Option<Duration>,
    /// The group's per-destination [`RetryBudget`] tuning: failovers and
    /// hedges spend a token each, successful serves earn a fraction
    /// back, and an empty bucket means the extra attempt simply does not
    /// launch (backpressure — never a breaker-visible failure).
    pub retry_budget: RetryBudgetConfig,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            attempts: 4,
            backoff_base: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(100),
            request_deadline: Some(Duration::from_secs(10)),
            hedge_after: None,
            retry_budget: RetryBudgetConfig::default(),
        }
    }
}

/// A request's absolute deadline: the accounting side of
/// [`RetryPolicy::request_deadline`]. Copyable so every retry, backoff
/// sleep, and hedge wait measures against the *same* instant.
#[derive(Debug, Clone, Copy)]
pub struct Deadline {
    at: Option<Instant>,
}

impl Deadline {
    /// A deadline `budget` from now (`None` = unbounded).
    pub fn within(budget: Option<Duration>) -> Deadline {
        Deadline {
            at: budget.map(|b| Instant::now() + b),
        }
    }

    /// Time left (`None` = unbounded; zero when expired).
    pub fn remaining(&self) -> Option<Duration> {
        self.at
            .map(|at| at.saturating_duration_since(Instant::now()))
    }

    /// `true` once the budget is exhausted.
    pub fn expired(&self) -> bool {
        self.remaining().is_some_and(|r| r.is_zero())
    }

    /// Caps a wait by the remaining budget.
    pub fn cap(&self, d: Duration) -> Duration {
        match self.remaining() {
            Some(r) => d.min(r),
            None => d,
        }
    }

    /// Caps an optional socket timeout by the remaining budget (at least
    /// 1 ms — zero-length socket timeouts are invalid at the OS level;
    /// the expiry check catches the budget itself).
    pub fn cap_io(&self, io: Option<Duration>) -> Option<Duration> {
        match (io, self.remaining()) {
            (None, None) => None,
            (Some(t), None) => Some(t),
            (None, Some(r)) => Some(r.max(Duration::from_millis(1))),
            (Some(t), Some(r)) => Some(t.min(r).max(Duration::from_millis(1))),
        }
    }

    /// Typed [`code::DEADLINE`] error once expired.
    ///
    /// # Errors
    ///
    /// [`code::DEADLINE`] iff the budget is exhausted.
    pub fn check(&self, what: &str) -> Result<()> {
        if self.expired() {
            return Err(CqcError::Protocol {
                code: code::DEADLINE,
                detail: format!("request deadline exhausted {what}"),
            });
        }
        Ok(())
    }
}

/// Counters the chaos harness reads: how often the fault machinery
/// actually engaged.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GroupStats {
    /// Attempts beyond a request's first (the failover count).
    pub failovers: u64,
    /// Replicas skipped for serving at a lagging/skewed epoch vector.
    pub stale_skips: u64,
    /// Attempts that resumed (and verified) a dead replica's prefix.
    pub prefix_resumes: u64,
    /// Hedge launches (primary exceeded [`RetryPolicy::hedge_after`]).
    pub hedges: u64,
    /// Hedges whose result won over the primary's.
    pub hedge_wins: u64,
    /// Replica update attempts that failed (the replica is now stale
    /// until re-synced; serves skip it via the epoch check).
    pub update_failures: u64,
    /// Failovers/hedges the retry budget funded.
    pub budget_spent: u64,
    /// Failovers/hedges the retry budget suppressed (each one is load
    /// that was *not* sent to an already-struggling fleet).
    pub budget_denied: u64,
}

#[derive(Debug, Default)]
struct StatsInner {
    failovers: AtomicU64,
    stale_skips: AtomicU64,
    prefix_resumes: AtomicU64,
    hedges: AtomicU64,
    hedge_wins: AtomicU64,
    update_failures: AtomicU64,
}

/// One replica: its address, its dedicated connection, its breaker.
#[derive(Debug)]
pub struct Replica {
    addr: String,
    client: Mutex<ShardClient>,
    breaker: CircuitBreaker,
}

impl Replica {
    /// The replica's address.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// The replica's breaker state.
    pub fn breaker_state(&self) -> BreakerState {
        self.breaker.state()
    }
}

/// How one serve attempt on one replica ended (internal taxonomy — the
/// breaker only ever hears about `Fault`s).
enum AttemptFail {
    /// Transport or typed remote failure: penalize the breaker, fail
    /// over.
    Fault(CqcError),
    /// Version skew (lagging or out-of-band): skip the replica, no
    /// breaker penalty.
    Stale(CqcError),
    /// The resumed stream contradicted the held prefix (or ended inside
    /// it): prefix discarded, retry clean. No breaker penalty.
    Diverged,
    /// The replica's connection is busy (a hedge loser still draining):
    /// try another. No breaker penalty.
    Busy,
}

/// R replicas of one shard behind a single serve/update facade.
#[derive(Debug)]
pub struct ReplicaGroup {
    shard: usize,
    replicas: Vec<Replica>,
    policy: RetryPolicy,
    base_io: Option<Duration>,
    failover_backoff: Backoff,
    budget: RetryBudget,
    stats: StatsInner,
}

impl ReplicaGroup {
    /// A group for shard `shard` over `addrs` (replica 0 is the
    /// primary). Each replica's client gets its own backoff lane
    /// ([`crate::backoff::lane_seed`] over `(shard, replica)`) and the
    /// group's failover loop takes the reserved
    /// [`crate::backoff::FAILOVER_LANE`], so a fleet-wide outage does
    /// not retry in lockstep. Connections are lazy; see
    /// `Router::connect_replicated` for the eager health probe.
    pub fn new(
        shard: usize,
        addrs: &[String],
        config: ClientConfig,
        breaker: BreakerConfig,
        policy: RetryPolicy,
    ) -> ReplicaGroup {
        let replicas = addrs
            .iter()
            .enumerate()
            .map(|(r, addr)| {
                let seeded = ClientConfig {
                    jitter_seed: lane_seed(config.jitter_seed, shard, r as u64),
                    ..config
                };
                Replica {
                    addr: addr.clone(),
                    client: Mutex::new(ShardClient::new(addr.clone(), seeded)),
                    breaker: CircuitBreaker::new(breaker),
                }
            })
            .collect();
        ReplicaGroup {
            shard,
            replicas,
            policy,
            base_io: config.io_timeout,
            failover_backoff: Backoff::new(
                policy.backoff_base,
                policy.backoff_cap,
                lane_seed(config.jitter_seed, shard, FAILOVER_LANE),
            ),
            budget: RetryBudget::new(policy.retry_budget),
            stats: StatsInner::default(),
        }
    }

    /// The shard index this group serves.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// The replicas, primary first.
    pub fn replicas(&self) -> &[Replica] {
        &self.replicas
    }

    /// Replica addresses, primary first.
    pub fn addrs(&self) -> Vec<String> {
        self.replicas.iter().map(|r| r.addr.clone()).collect()
    }

    /// Snapshot of the group's fault counters.
    pub fn stats(&self) -> GroupStats {
        GroupStats {
            failovers: self.stats.failovers.load(Ordering::Relaxed),
            stale_skips: self.stats.stale_skips.load(Ordering::Relaxed),
            prefix_resumes: self.stats.prefix_resumes.load(Ordering::Relaxed),
            hedges: self.stats.hedges.load(Ordering::Relaxed),
            hedge_wins: self.stats.hedge_wins.load(Ordering::Relaxed),
            update_failures: self.stats.update_failures.load(Ordering::Relaxed),
            budget_spent: self.budget.spent(),
            budget_denied: self.budget.denied(),
        }
    }

    /// The group's shared retry budget (failovers and hedges draw on
    /// it; successful serves refill it).
    pub fn retry_budget(&self) -> &RetryBudget {
        &self.budget
    }

    /// Cumulative wire traffic across the group's replica connections:
    /// `(bytes received, bytes sent)`.
    pub fn wire_bytes(&self) -> (u64, u64) {
        let mut totals = (0u64, 0u64);
        for r in &self.replicas {
            let (rx, tx) = r
                .client
                .lock()
                .expect("replica client poisoned")
                .wire_bytes();
            totals.0 += rx;
            totals.1 += tx;
        }
        totals
    }

    /// Summed breaker transitions across the group's replicas.
    pub fn breaker_transitions(&self) -> BreakerTransitions {
        let mut sum = BreakerTransitions::default();
        for r in &self.replicas {
            let t = r.breaker.transitions();
            sum.opened += t.opened;
            sum.half_opened += t.half_opened;
            sum.closed += t.closed;
        }
        sum
    }

    /// Health-probes every replica: `(addr, epoch vector or error)` in
    /// replica order. Used at connect time and for re-syncs.
    pub fn probe(&self) -> Vec<(String, Result<Vec<Epoch>>)> {
        self.replicas
            .iter()
            .map(|r| {
                let outcome = r.client.lock().expect("replica client poisoned").health();
                (r.addr.clone(), outcome)
            })
            .collect()
    }

    /// Registers a view on every replica (all must succeed — a replica
    /// that misses a registration could never serve the view). Returns
    /// the epoch vector of the last replica.
    ///
    /// # Errors
    ///
    /// The first replica failure, tagged with its address.
    pub fn register(&self, req: &RegisterReq) -> Result<Vec<Epoch>> {
        let mut epochs = Vec::new();
        for r in &self.replicas {
            epochs = r
                .client
                .lock()
                .expect("replica client poisoned")
                .register(req)
                .map_err(|e| tag_replica(&r.addr, e))?;
        }
        Ok(epochs)
    }

    fn first_allowed(&self, rotation: usize, exclude: Option<usize>) -> Option<usize> {
        let n = self.replicas.len();
        (0..n)
            .map(|k| (rotation + k) % n)
            .find(|&i| Some(i) != exclude && self.replicas[i].breaker.allow())
    }

    /// One serve attempt on replica `idx`, with breaker bookkeeping.
    #[allow(clippy::too_many_arguments)]
    fn attempt(
        &self,
        idx: usize,
        view: &str,
        bound: &[Value],
        expected: &[Epoch],
        priority: ServePriority,
        deadline: Deadline,
        out: &mut AnswerBlock,
        base: usize,
    ) -> std::result::Result<(), AttemptFail> {
        let replica = &self.replicas[idx];
        let Ok(mut client) = replica.client.try_lock() else {
            return Err(AttemptFail::Busy);
        };
        if client
            .set_io_timeout(deadline.cap_io(self.base_io))
            .is_err()
        {
            return Err(AttemptFail::Fault(CqcError::Io(
                "could not arm the attempt timeout".into(),
            )));
        }
        let pre_len = out.len();
        let skip = pre_len - base;
        if skip > 0 {
            self.stats.prefix_resumes.fetch_add(1, Ordering::Relaxed);
        }
        let mut sink = ResumeSink {
            out,
            base,
            skip,
            replayed: 0,
            diverged: false,
        };
        match client.serve_with_sink_opts(view, bound, &mut sink, priority, deadline) {
            Err(e) => {
                // The prefix (possibly extended by this attempt's chunks)
                // is kept: the next attempt re-verifies the whole overlap.
                replica.breaker.record_failure();
                Err(AttemptFail::Fault(e))
            }
            Ok((_pushed, epochs)) => {
                if sink.diverged {
                    // Two replicas disagreed inside the overlap: the held
                    // prefix has no authority. Start clean.
                    out.truncate(base);
                    Err(AttemptFail::Diverged)
                } else if epochs != expected {
                    // Completed, but at the wrong version: roll back to
                    // what we held before this attempt and skip the
                    // replica (lagging or out-of-band skew — either way
                    // it must not contribute answers).
                    out.truncate(pre_len);
                    let lagging = epochs.len() == expected.len()
                        && epochs.iter().zip(expected).all(|(e, x)| e <= x);
                    self.stats.stale_skips.fetch_add(1, Ordering::Relaxed);
                    Err(AttemptFail::Stale(CqcError::Protocol {
                        code: code::EPOCH_MISMATCH,
                        detail: format!(
                            "replica {} served at epochs {epochs:?}, expected {expected:?}{}",
                            replica.addr,
                            if lagging {
                                " (replica lagging; skipped)"
                            } else {
                                "; re-sync with health_check()"
                            }
                        ),
                    }))
                } else if sink.replayed < skip {
                    // The correct stream is *shorter* than the held
                    // prefix: the prefix was wrong. Start clean.
                    out.truncate(base);
                    replica.breaker.record_success();
                    Err(AttemptFail::Diverged)
                } else {
                    replica.breaker.record_success();
                    Ok(())
                }
            }
        }
    }

    /// Serves one request into `out` (appending), failing over across
    /// replicas under the group's [`RetryPolicy`]. Returns the number of
    /// answers appended.
    ///
    /// # Errors
    ///
    /// [`code::DEADLINE`] when the budget runs out mid-failover, the
    /// last replica error when the attempt budget runs out, a typed
    /// [`code::REFUSED`] when the retry budget cannot fund another
    /// failover, or a typed "no replica available" failure when every
    /// breaker is open.
    pub fn serve_into_block(
        self: &Arc<Self>,
        view: &str,
        bound: &[Value],
        expected: &[Epoch],
        deadline: Deadline,
        out: &mut AnswerBlock,
    ) -> Result<usize> {
        self.serve_into_block_prioritized(
            view,
            bound,
            expected,
            ServePriority::Interactive,
            deadline,
            out,
        )
    }

    /// [`ReplicaGroup::serve_into_block`] with an explicit priority
    /// class, threaded (with the remaining deadline) onto the wire for
    /// the primary attempt, every failover, and every hedge.
    ///
    /// # Errors
    ///
    /// As [`ReplicaGroup::serve_into_block`].
    pub fn serve_into_block_prioritized(
        self: &Arc<Self>,
        view: &str,
        bound: &[Value],
        expected: &[Epoch],
        priority: ServePriority,
        deadline: Deadline,
        out: &mut AnswerBlock,
    ) -> Result<usize> {
        let base = out.len();
        if let Some(won) = self.hedged_round(view, bound, expected, priority, deadline, out, base) {
            return won;
        }
        let mut last_err: Option<CqcError> = None;
        let attempts = self.policy.attempts.max(1);
        for attempt in 0..attempts {
            deadline.check("before a serve attempt")?;
            if attempt > 0 {
                // A failover is a retry: it must be funded by the
                // group's budget, or the fleet-wide amplification bound
                // is fiction. A drained bucket is backpressure — the
                // last real error surfaces, no breaker is touched.
                if !self.budget.try_spend() {
                    return Err(budget_exhausted_error(self.shard, last_err.as_ref()));
                }
                self.stats.failovers.fetch_add(1, Ordering::Relaxed);
                let nap = deadline.cap(self.failover_backoff.delay(attempt - 1));
                if !nap.is_zero() {
                    std::thread::sleep(nap);
                }
                deadline.check("after the failover backoff")?;
            }
            let Some(idx) = self.first_allowed(attempt as usize, None) else {
                return Err(last_err.unwrap_or_else(|| self.all_down_error()));
            };
            match self.attempt(idx, view, bound, expected, priority, deadline, out, base) {
                Ok(()) => {
                    self.budget.record_success();
                    return Ok(out.len() - base);
                }
                Err(AttemptFail::Fault(e)) | Err(AttemptFail::Stale(e)) => last_err = Some(e),
                Err(AttemptFail::Diverged) => {
                    last_err = Some(CqcError::Protocol {
                        code: code::SHARD_FAILED,
                        detail: "resumed stream diverged from the held prefix".into(),
                    });
                }
                Err(AttemptFail::Busy) => {
                    last_err = Some(CqcError::Protocol {
                        code: code::REFUSED,
                        detail: format!(
                            "replica {} connection busy (hedge in flight)",
                            self.replicas[idx].addr
                        ),
                    });
                }
            }
        }
        Err(last_err.unwrap_or_else(|| self.all_down_error()))
    }

    /// The optional hedged first round: launch the primary in a helper
    /// thread, wait [`RetryPolicy::hedge_after`], and race a second
    /// replica if the primary is slow. `None` means "not hedged — run
    /// the normal failover loop" (hedging disabled, < 2 replicas, a
    /// prefix is held, the retry budget would not fund the hedge, or
    /// both racers failed).
    #[allow(clippy::too_many_arguments)]
    fn hedged_round(
        self: &Arc<Self>,
        view: &str,
        bound: &[Value],
        expected: &[Epoch],
        priority: ServePriority,
        deadline: Deadline,
        out: &mut AnswerBlock,
        base: usize,
    ) -> Option<Result<usize>> {
        let hedge_after = self.policy.hedge_after?;
        if self.replicas.len() < 2 || out.len() != base {
            return None;
        }
        let primary = self.first_allowed(0, None)?;
        let (tx, rx) = mpsc::channel();
        let me = Arc::clone(self);
        let (v, b, x) = (view.to_string(), bound.to_vec(), expected.to_vec());
        std::thread::spawn(move || {
            let mut block = AnswerBlock::new();
            let outcome = me.attempt(primary, &v, &b, &x, priority, deadline, &mut block, 0);
            let _ = tx.send((outcome, block));
        });
        match rx.recv_timeout(deadline.cap(hedge_after)) {
            Ok((Ok(()), block)) => {
                self.budget.record_success();
                adopt(out, &block);
                Some(Ok(out.len() - base))
            }
            Ok((Err(_), block)) => {
                // Primary failed fast. If it died mid-stream, its flushed
                // prefix is worth keeping: the failover loop will verify
                // it against the next replica's replay instead of
                // re-merging it. (Stale/busy attempts truncate the block
                // themselves, so only a mid-stream fault leaves tuples.)
                adopt(out, &block);
                None
            }
            Err(_) => {
                // Primary is slow (or the deadline is closing in): hedge
                // — but a hedge is duplicate load, so it launches only if
                // the retry budget funds it. Unfunded, we simply keep
                // waiting on the primary (backpressure, not failure).
                if !self.budget.try_spend() {
                    return match deadline
                        .remaining()
                        .map_or_else(|| rx.recv().ok(), |r| rx.recv_timeout(r).ok())
                    {
                        Some((Ok(()), block)) => {
                            self.budget.record_success();
                            adopt(out, &block);
                            Some(Ok(out.len() - base))
                        }
                        Some((Err(_), block)) => {
                            adopt(out, &block);
                            None
                        }
                        None => None,
                    };
                }
                self.stats.hedges.fetch_add(1, Ordering::Relaxed);
                let alt = self.first_allowed(1, Some(primary))?;
                let mut hedge_block = AnswerBlock::new();
                let hedged = self.attempt(
                    alt,
                    view,
                    bound,
                    expected,
                    priority,
                    deadline,
                    &mut hedge_block,
                    0,
                );
                // The primary may have finished while the hedge ran;
                // prefer whichever succeeded (primary on a tie — it was
                // first on the wire).
                if let Ok((Ok(()), block)) = rx.try_recv() {
                    self.budget.record_success();
                    adopt(out, &block);
                    return Some(Ok(out.len() - base));
                }
                match hedged {
                    Ok(()) => {
                        self.stats.hedge_wins.fetch_add(1, Ordering::Relaxed);
                        self.budget.record_success();
                        adopt(out, &hedge_block);
                        Some(Ok(out.len() - base))
                    }
                    Err(_) => {
                        // Both racers failed (so far): give the primary
                        // until the deadline, then fall back to the loop.
                        match deadline
                            .remaining()
                            .map_or_else(|| rx.recv().ok(), |r| rx.recv_timeout(r).ok())
                        {
                            Some((Ok(()), block)) => {
                                self.budget.record_success();
                                adopt(out, &block);
                                Some(Ok(out.len() - base))
                            }
                            _ => None,
                        }
                    }
                }
            }
        }
    }

    fn all_down_error(&self) -> CqcError {
        CqcError::Protocol {
            code: code::SHARD_FAILED,
            detail: format!(
                "shard {}: no replica available (breakers open on {})",
                self.shard,
                self.addrs().join(", ")
            ),
        }
    }

    /// Applies a preconditioned delta to every replica. The group
    /// succeeds when at least one replica lands at the new vector;
    /// replicas that fail are recorded (and left stale — the per-replica
    /// epoch check keeps them out of serves until an operator re-syncs
    /// them). An ambiguous I/O failure on a replica is retried under the
    /// same precondition: a retry of a delta that already landed comes
    /// back [`code::EPOCH_MISMATCH`], and a health probe exactly one
    /// bump past `expected` proves the first attempt applied — the
    /// idempotency contract, pinned by the fault suite.
    ///
    /// # Errors
    ///
    /// The first replica error when *no* replica applied the delta, or a
    /// typed divergence error if two replicas report different
    /// post-update vectors.
    pub fn update_preconditioned(&self, delta: &Delta, expected: &[Epoch]) -> Result<Vec<Epoch>> {
        let mut landed: Option<Vec<Epoch>> = None;
        let mut first_err: Option<CqcError> = None;
        for r in &self.replicas {
            if !r.breaker.allow() {
                self.stats.update_failures.fetch_add(1, Ordering::Relaxed);
                if first_err.is_none() {
                    first_err = Some(tag_replica(&r.addr, self.all_down_error()));
                }
                continue;
            }
            match self.update_on(r, delta, expected) {
                Ok(v) => {
                    r.breaker.record_success();
                    if let Some(prev) = &landed {
                        if *prev != v {
                            return Err(CqcError::Protocol {
                                code: code::EPOCH_MISMATCH,
                                detail: format!(
                                    "shard {} replicas diverged after an update: {prev:?} vs \
                                     {v:?} ({})",
                                    self.shard, r.addr
                                ),
                            });
                        }
                    }
                    landed = Some(v);
                }
                Err(e) => {
                    if matches!(e, CqcError::Io(_)) {
                        r.breaker.record_failure();
                    }
                    self.stats.update_failures.fetch_add(1, Ordering::Relaxed);
                    if first_err.is_none() {
                        first_err = Some(tag_replica(&r.addr, e));
                    }
                }
            }
        }
        match landed {
            Some(v) => Ok(v),
            None => Err(first_err.unwrap_or_else(|| self.all_down_error())),
        }
    }

    /// One replica's preconditioned update, with the ambiguous-Io
    /// reconciliation described on [`ReplicaGroup::update_preconditioned`].
    fn update_on(&self, r: &Replica, delta: &Delta, expected: &[Epoch]) -> Result<Vec<Epoch>> {
        let mut client = r.client.lock().expect("replica client poisoned");
        client.set_io_timeout(self.base_io)?;
        match client.update_preconditioned(delta, expected) {
            Err(CqcError::Io(_)) => {
                // Ambiguous: the delta may or may not have applied before
                // the transport died. The precondition makes the retry
                // safe either way.
                match client.update_preconditioned(delta, expected) {
                    Err(CqcError::Protocol {
                        code: code::EPOCH_MISMATCH,
                        detail,
                    }) => {
                        let now = client.health()?;
                        if plausibly_applied(expected, &now) {
                            Ok(now) // the first attempt landed
                        } else {
                            Err(CqcError::Protocol {
                                code: code::EPOCH_MISMATCH,
                                detail,
                            })
                        }
                    }
                    other => other,
                }
            }
            other => other,
        }
    }
}

/// `now` is exactly one application past `expected`: elementwise
/// `expected ≤ now ≤ expected + 1`, with at least one bump. (A single
/// delta bumps each touched shard epoch by at most one.)
fn plausibly_applied(expected: &[Epoch], now: &[Epoch]) -> bool {
    now.len() == expected.len()
        && now != expected
        && now
            .iter()
            .zip(expected)
            .all(|(n, x)| *n >= *x && *n <= x + 1)
}

/// The typed backpressure error for a drained retry budget. Carries the
/// last real replica error (if any) so the caller still sees *why* the
/// failovers were being attempted.
fn budget_exhausted_error(shard: usize, last: Option<&CqcError>) -> CqcError {
    CqcError::Protocol {
        code: code::REFUSED,
        detail: match last {
            Some(e) => format!("shard {shard}: retry budget exhausted; last attempt: {e}"),
            None => format!("shard {shard}: retry budget exhausted"),
        },
    }
}

fn tag_replica(addr: &str, e: CqcError) -> CqcError {
    match e {
        CqcError::Io(m) => CqcError::Io(format!("replica {addr}: {m}")),
        CqcError::Protocol { code: c, detail } => CqcError::Protocol {
            code: c,
            detail: format!("replica {addr}: {detail}"),
        },
        other => other,
    }
}

/// Replaces `out`'s answers past its current length with `winner`'s —
/// the hedge adoption point (`out` is empty past `base` by construction
/// when hedging runs).
fn adopt(out: &mut AnswerBlock, winner: &AnswerBlock) {
    for t in winner.iter() {
        out.push(t);
    }
}

/// The resuming sink: replays (and verifies) the first `skip` answers
/// against the prefix already held in `out`, then appends the rest. At a
/// fixed epoch the stream is deterministic, so a verified overlap means
/// the final block equals the live replica's complete stream.
struct ResumeSink<'b> {
    out: &'b mut AnswerBlock,
    base: usize,
    skip: usize,
    replayed: usize,
    diverged: bool,
}

impl AnswerSink for ResumeSink<'_> {
    fn push(&mut self, tuple: &[Value]) -> bool {
        if self.replayed < self.skip {
            if self.out.get(self.base + self.replayed) != tuple {
                self.diverged = true;
                return false; // hang up: the prefix has no authority
            }
            self.replayed += 1;
            true
        } else {
            self.out.push(tuple)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadline_accounting_caps_every_wait() {
        let d = Deadline::within(Some(Duration::from_millis(50)));
        assert!(!d.expired());
        assert!(d.cap(Duration::from_secs(10)) <= Duration::from_millis(50));
        assert!(d.cap_io(Some(Duration::from_secs(5))).unwrap() <= Duration::from_millis(50));
        let unbounded = Deadline::within(None);
        assert_eq!(unbounded.remaining(), None);
        assert_eq!(
            unbounded.cap(Duration::from_secs(7)),
            Duration::from_secs(7)
        );
        assert_eq!(unbounded.cap_io(None), None);
        let expired = Deadline::within(Some(Duration::ZERO));
        assert!(expired.expired());
        let err = expired.check("in a test").unwrap_err();
        assert!(
            matches!(
                err,
                CqcError::Protocol {
                    code: code::DEADLINE,
                    ..
                }
            ),
            "{err}"
        );
        // Even expired, the socket timeout floor is 1 ms (never zero).
        assert!(expired.cap_io(Some(Duration::from_secs(1))).unwrap() >= Duration::from_millis(1));
    }

    #[test]
    fn plausibly_applied_is_exactly_one_bump() {
        assert!(plausibly_applied(&[3, 7], &[4, 7]));
        assert!(plausibly_applied(&[3, 7], &[4, 8]));
        assert!(!plausibly_applied(&[3, 7], &[3, 7]), "no bump");
        assert!(!plausibly_applied(&[3, 7], &[5, 7]), "two bumps");
        assert!(!plausibly_applied(&[3, 7], &[2, 7]), "regression");
        assert!(!plausibly_applied(&[3, 7], &[4]), "length skew");
    }

    #[test]
    fn resume_sink_verifies_the_overlap() {
        let mut out = AnswerBlock::new();
        out.push(&[1, 2]);
        out.push(&[3, 4]);
        // Matching replay, then fresh answers append.
        let mut sink = ResumeSink {
            out: &mut out,
            base: 0,
            skip: 2,
            replayed: 0,
            diverged: false,
        };
        assert!(sink.push(&[1, 2]));
        assert!(sink.push(&[3, 4]));
        assert!(sink.push(&[5, 6]));
        assert!(!sink.diverged);
        assert_eq!(out.len(), 3);
        // A divergent replay stops the stream and flags the prefix.
        let mut out = AnswerBlock::new();
        out.push(&[1, 2]);
        let mut sink = ResumeSink {
            out: &mut out,
            base: 0,
            skip: 1,
            replayed: 0,
            diverged: false,
        };
        assert!(!sink.push(&[9, 9]));
        assert!(sink.diverged);
    }
}
