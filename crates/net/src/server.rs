//! The shard server: a [`cqc_engine::BlockService`] behind a TCP listener.
//!
//! One OS thread per connection (the fleet model is few, long-lived
//! connections — a router holds one per shard), each running a
//! read-dispatch-reply loop over the frame codec. Three service
//! properties the ISSUE requires are enforced here rather than in the
//! engine:
//!
//! * **deadlines** — a serve request gets `request_deadline` of wall
//!   time; the streaming sink checks the clock every
//!   `DEADLINE_CHECK_MASK + 1` answers and stops the enumeration through
//!   the push-sink early-stop hook, so a runaway request costs bounded
//!   server time and the client gets a typed [`code::DEADLINE`] error;
//! * **backpressure** — at most `max_inflight` serve requests run at
//!   once across all connections; excess requests are refused immediately
//!   with [`code::REFUSED`] instead of queueing unboundedly;
//! * **cancellation** — a client that hangs up mid-stream turns the next
//!   chunk flush into a write error, which the sink converts into the
//!   same early stop: enumeration halts mid-block, not at stream end.

use cqc_common::error::Result;
use cqc_common::frame::{code, FrameKind, FrameReader, PayloadWriter};
use cqc_common::{AnswerBlock, AnswerSink, CqcError, Value};
use cqc_engine::BlockService;
use std::io::{BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::protocol;

/// The sink checks the deadline every `DEADLINE_CHECK_MASK + 1` pushes
/// (power of two, so the check compiles to a mask test).
const DEADLINE_CHECK_MASK: u64 = 255;

/// Tuning for a [`NetServer`].
#[derive(Debug, Clone, Copy)]
pub struct NetServerConfig {
    /// Serve requests allowed in flight at once across all connections;
    /// excess requests get an immediate [`code::REFUSED`] error frame.
    pub max_inflight: usize,
    /// Wall-time budget per serve request; `None` disables the deadline.
    pub request_deadline: Option<Duration>,
    /// Answers per chunk frame (the latency/overhead trade: chunks are
    /// flushed to the socket as they fill).
    pub chunk_tuples: usize,
}

impl Default for NetServerConfig {
    fn default() -> NetServerConfig {
        NetServerConfig {
            max_inflight: 64,
            request_deadline: Some(Duration::from_secs(30)),
            chunk_tuples: 1024,
        }
    }
}

/// A running server: the bound address plus the shutdown control.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the listener actually bound (resolves `:0` requests).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, hangs up every live connection, and joins the
    /// accept thread. Idempotent.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop: it re-checks the stop flag per
        // iteration, so one throwaway connection is enough.
        let _ = TcpStream::connect(self.addr);
        for conn in self.conns.lock().expect("conn list poisoned").drain(..) {
            let _ = conn.shutdown(Shutdown::Both);
        }
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A TCP front for one [`BlockService`].
#[derive(Debug)]
pub struct NetServer;

impl NetServer {
    /// Binds `addr` (e.g. `127.0.0.1:0`) and serves `service` until the
    /// returned handle shuts down. Connection threads are detached; the
    /// handle's shutdown hangs their sockets up, which ends their loops.
    ///
    /// # Errors
    ///
    /// Bind failures as [`CqcError::Io`].
    pub fn spawn(
        service: Arc<dyn BlockService>,
        addr: &str,
        config: NetServerConfig,
    ) -> Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let bound = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        let inflight = Arc::new(AtomicUsize::new(0));
        let accept_stop = Arc::clone(&stop);
        let accept_conns = Arc::clone(&conns);
        let accept_thread = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                // Chunk streams are many small sequential writes; without
                // this, Nagle + delayed ACK stalls every reply ~40 ms.
                stream.set_nodelay(true).ok();
                if let Ok(tracked) = stream.try_clone() {
                    accept_conns
                        .lock()
                        .expect("conn list poisoned")
                        .push(tracked);
                }
                let service = Arc::clone(&service);
                let inflight = Arc::clone(&inflight);
                std::thread::spawn(move || {
                    handle_connection(&*service, stream, config, &inflight);
                });
            }
        });
        Ok(ServerHandle {
            addr: bound,
            stop,
            conns,
            accept_thread: Some(accept_thread),
        })
    }
}

/// The streaming serve sink: buffers answers into a reusable block and
/// flushes a chunk frame whenever it fills. Deadline hits and socket
/// failures both stop the enumeration by returning `false` from `push` —
/// the cooperative-cancellation hook — and are recorded for the dispatch
/// loop to translate into an error frame (or a hangup).
struct ChunkSink<'w, W: Write> {
    writer: &'w mut W,
    payload: PayloadWriter,
    block: AnswerBlock,
    chunk_tuples: usize,
    deadline: Option<Instant>,
    pushes: u64,
    total: u64,
    failure: Option<CqcError>,
}

impl<'w, W: Write> ChunkSink<'w, W> {
    fn new(writer: &'w mut W, chunk_tuples: usize, deadline: Option<Instant>) -> ChunkSink<'w, W> {
        ChunkSink {
            writer,
            payload: PayloadWriter::new(),
            block: AnswerBlock::new(),
            chunk_tuples: chunk_tuples.max(1),
            deadline,
            pushes: 0,
            total: 0,
            failure: None,
        }
    }

    fn flush_chunk(&mut self) -> Result<()> {
        if self.block.is_empty() {
            return Ok(());
        }
        cqc_common::frame::encode_chunk(&mut self.payload, &self.block, 0, self.block.len());
        cqc_common::frame::write_frame(self.writer, FrameKind::Chunk, self.payload.bytes())?;
        self.block.clear();
        Ok(())
    }

    /// Flushes the tail chunk; the sink's work is done after this.
    fn finish(&mut self) -> Result<()> {
        self.flush_chunk()
    }
}

impl<W: Write> AnswerSink for ChunkSink<'_, W> {
    fn push(&mut self, tuple: &[Value]) -> bool {
        // Check the deadline on push 0 and every MASK+1 thereafter, so a
        // zero deadline fires before any work and a long stream pays one
        // clock read per few hundred answers.
        if self.pushes & DEADLINE_CHECK_MASK == 0 {
            if let Some(deadline) = self.deadline {
                if Instant::now() >= deadline {
                    self.failure = Some(CqcError::Protocol {
                        code: code::DEADLINE,
                        detail: format!("request deadline elapsed after {} answers", self.total),
                    });
                    return false;
                }
            }
        }
        self.pushes += 1;
        self.block.push(tuple);
        self.total += 1;
        if self.block.len() >= self.chunk_tuples {
            if let Err(e) = self.flush_chunk() {
                // Socket gone (client cancelled) or codec refusal: stop
                // enumerating mid-block.
                self.failure = Some(e);
                return false;
            }
        }
        true
    }
}

fn send_error(writer: &mut impl Write, payload: &mut PayloadWriter, e: &CqcError) -> Result<()> {
    protocol::encode_error(payload, e);
    cqc_common::frame::write_frame(writer, FrameKind::Error, payload.bytes())?;
    writer.flush()?;
    Ok(())
}

fn send_epochs(
    writer: &mut impl Write,
    payload: &mut PayloadWriter,
    kind: FrameKind,
    epochs: &[u64],
) -> Result<()> {
    protocol::encode_epoch_reply(payload, epochs);
    cqc_common::frame::write_frame(writer, kind, payload.bytes())?;
    writer.flush()?;
    Ok(())
}

/// One connection's read-dispatch-reply loop. Request-level failures are
/// answered with an error frame and the connection stays up; transport
/// failures (peer gone, malformed frame) end the loop.
fn handle_connection(
    service: &dyn BlockService,
    stream: TcpStream,
    config: NetServerConfig,
    inflight: &AtomicUsize,
) {
    let Ok(mut read_half) = stream.try_clone() else {
        return;
    };
    let mut writer = BufWriter::new(stream);
    let mut frames = FrameReader::new();
    let mut payload = PayloadWriter::new();
    loop {
        let (kind, body) = match frames.read_frame(&mut read_half) {
            Ok(f) => f,
            Err(e @ CqcError::Protocol { .. }) => {
                // Tell the peer why before hanging up (best effort: it may
                // be speaking a different protocol entirely).
                let _ = send_error(&mut writer, &mut payload, &e);
                return;
            }
            Err(_) => return, // peer disconnected
        };
        let outcome: Result<()> = match kind {
            FrameKind::Health => send_epochs(
                &mut writer,
                &mut payload,
                FrameKind::HealthOk,
                &service.version(),
            ),
            FrameKind::Register => match protocol::parse_register(body)
                .and_then(|r| service.register_view(&r.name, &r.query, &r.pattern, &r.strategy))
            {
                Ok(epochs) => {
                    send_epochs(&mut writer, &mut payload, FrameKind::RegisterOk, &epochs)
                }
                Err(e) => send_error(&mut writer, &mut payload, &e),
            },
            FrameKind::Update => match protocol::parse_update_preconditioned(body).and_then(
                |(delta, precondition)| {
                    service.apply_update_preconditioned(&delta, precondition.as_deref())
                },
            ) {
                Ok(epochs) => send_epochs(&mut writer, &mut payload, FrameKind::UpdateOk, &epochs),
                Err(e) => send_error(&mut writer, &mut payload, &e),
            },
            FrameKind::Serve => {
                serve_one(service, body, &mut writer, &mut payload, &config, inflight)
            }
            other => {
                let _ = send_error(
                    &mut writer,
                    &mut payload,
                    &protocol::unexpected_frame("as a request", other),
                );
                return;
            }
        };
        if outcome.is_err() {
            return; // the reply could not be written: connection is dead
        }
    }
}

/// Dispatches one serve request: gate on the in-flight bound, stream
/// chunks under the deadline, close with `ServeDone` or an error frame.
fn serve_one(
    service: &dyn BlockService,
    body: &[u8],
    writer: &mut BufWriter<TcpStream>,
    payload: &mut PayloadWriter,
    config: &NetServerConfig,
    inflight: &AtomicUsize,
) -> Result<()> {
    let req = match protocol::parse_serve(body) {
        Ok(r) => r,
        Err(e) => return send_error(writer, payload, &e),
    };
    if inflight.fetch_add(1, Ordering::SeqCst) >= config.max_inflight {
        inflight.fetch_sub(1, Ordering::SeqCst);
        return send_error(
            writer,
            payload,
            &CqcError::Protocol {
                code: code::REFUSED,
                detail: format!(
                    "server at capacity ({} serve requests in flight)",
                    config.max_inflight
                ),
            },
        );
    }
    let deadline = config.request_deadline.map(|d| Instant::now() + d);
    let mut sink = ChunkSink::new(writer, config.chunk_tuples, deadline);
    let served = service.serve_into(&req.view, &req.bound, &mut sink);
    let failure = sink.failure.take();
    let total = sink.total;
    let tail = match failure {
        None => sink.finish(),
        Some(_) => Ok(()),
    };
    inflight.fetch_sub(1, Ordering::SeqCst);
    match (served, failure, tail) {
        (Err(e), _, _) => send_error(writer, payload, &e),
        (Ok(_), Some(CqcError::Io(m)), _) => Err(CqcError::Io(m)), // peer gone mid-stream
        (Ok(_), Some(e), _) => send_error(writer, payload, &e),    // deadline
        (Ok(_), None, Err(e)) => Err(e),                           // tail flush failed: peer gone
        (Ok(_), None, Ok(())) => {
            protocol::encode_serve_done(payload, total, &service.version());
            cqc_common::frame::write_frame(writer, FrameKind::ServeDone, payload.bytes())?;
            writer.flush()?;
            Ok(())
        }
    }
}
