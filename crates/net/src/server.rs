//! The shard server: a [`cqc_engine::BlockService`] behind a TCP listener.
//!
//! One OS thread per connection (the fleet model is few, long-lived
//! connections — a router holds one per shard), each running a
//! read-dispatch-reply loop over the frame codec. Three service
//! properties the ISSUE requires are enforced here rather than in the
//! engine:
//!
//! * **deadlines** — a serve request gets `request_deadline` of wall
//!   time, tightened by the request's own wire-carried deadline budget
//!   when a [`cqc_common::frame::ServeTail`] is present; the streaming
//!   sink checks the clock every `DEADLINE_CHECK_MASK + 1` answers and
//!   stops the enumeration through the push-sink early-stop hook, so a
//!   runaway request costs bounded server time and the client gets a
//!   typed [`code::DEADLINE`] error. A request whose budget is spent on
//!   arrival — or cannot cover the view's measured serve cost
//!   ([`BlockService::serve_cost_ns`]) — is shed before any enumeration
//!   work;
//! * **backpressure** — serve requests run through an
//!   [`AdmissionController`]: `max_inflight` concurrent serves, a small
//!   bounded wait queue with priority-aware adaptive-LIFO shedding, and
//!   a brownout mode that sheds Batch before Interactive under
//!   sustained overload (typed [`code::REFUSED`] / [`code::DEADLINE`]
//!   frames, never unbounded buffering). Health and update frames are
//!   dispatched inline on their connection thread and are **never**
//!   queued behind serves;
//! * **cancellation** — a client that hangs up mid-stream turns the next
//!   chunk flush into a write error, which the sink converts into the
//!   same early stop: enumeration halts mid-block, not at stream end.

use cqc_common::error::Result;
use cqc_common::frame::{code, FrameKind, FrameReader, PayloadWriter};
use cqc_common::{AnswerBlock, AnswerSink, CqcError, Value};
use cqc_engine::BlockService;
use std::io::{BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::admission::{deadline_error, AdmissionConfig, AdmissionController, AdmissionStats};
use crate::protocol;

/// The sink checks the deadline every `DEADLINE_CHECK_MASK + 1` pushes
/// (power of two, so the check compiles to a mask test).
const DEADLINE_CHECK_MASK: u64 = 255;

/// Tuning for a [`NetServer`].
#[derive(Debug, Clone, Copy)]
pub struct NetServerConfig {
    /// Serve requests allowed in flight at once across all connections;
    /// excess requests wait in the bounded admission queue or are shed
    /// with a typed [`code::REFUSED`] error frame.
    pub max_inflight: usize,
    /// Admission wait-queue depth behind the in-flight slots (see
    /// [`AdmissionConfig::queue_depth`]); zero sheds immediately at
    /// capacity, which is the pre-admission-controller behavior.
    pub queue_depth: usize,
    /// Saturation duration before brownout sheds Batch-class serves on
    /// arrival (see [`AdmissionConfig::brownout_after`]).
    pub brownout_after: Duration,
    /// Wall-time budget per serve request; `None` disables the deadline.
    /// A tighter wire-carried deadline budget always wins.
    pub request_deadline: Option<Duration>,
    /// Answers per chunk frame (the latency/overhead trade: chunks are
    /// flushed to the socket as they fill).
    pub chunk_tuples: usize,
}

impl Default for NetServerConfig {
    fn default() -> NetServerConfig {
        NetServerConfig {
            max_inflight: 64,
            queue_depth: 16,
            brownout_after: Duration::from_secs(1),
            request_deadline: Some(Duration::from_secs(30)),
            chunk_tuples: 1024,
        }
    }
}

impl NetServerConfig {
    /// The admission-controller limits this config implies.
    pub fn admission(&self) -> AdmissionConfig {
        AdmissionConfig {
            max_inflight: self.max_inflight,
            queue_depth: self.queue_depth,
            brownout_after: self.brownout_after,
        }
    }
}

/// A running server: the bound address plus the shutdown control.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    admission: Arc<AdmissionController>,
}

impl ServerHandle {
    /// The address the listener actually bound (resolves `:0` requests).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A snapshot of the server's admission counters (admitted vs shed
    /// by class and reason) — what the overload bench gates on.
    pub fn admission_stats(&self) -> AdmissionStats {
        self.admission.stats()
    }

    /// Stops accepting, hangs up every live connection, and joins the
    /// accept thread. Idempotent.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop: it re-checks the stop flag per
        // iteration, so one throwaway connection is enough.
        let _ = TcpStream::connect(self.addr);
        for conn in self.conns.lock().expect("conn list poisoned").drain(..) {
            let _ = conn.shutdown(Shutdown::Both);
        }
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A TCP front for one [`BlockService`].
#[derive(Debug)]
pub struct NetServer;

impl NetServer {
    /// Binds `addr` (e.g. `127.0.0.1:0`) and serves `service` until the
    /// returned handle shuts down. Connection threads are detached; the
    /// handle's shutdown hangs their sockets up, which ends their loops.
    ///
    /// # Errors
    ///
    /// Bind failures as [`CqcError::Io`].
    pub fn spawn(
        service: Arc<dyn BlockService>,
        addr: &str,
        config: NetServerConfig,
    ) -> Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let bound = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        let admission = Arc::new(AdmissionController::new(config.admission()));
        let accept_stop = Arc::clone(&stop);
        let accept_conns = Arc::clone(&conns);
        let accept_admission = Arc::clone(&admission);
        let accept_thread = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                // Chunk streams are many small sequential writes; without
                // this, Nagle + delayed ACK stalls every reply ~40 ms.
                stream.set_nodelay(true).ok();
                if let Ok(tracked) = stream.try_clone() {
                    accept_conns
                        .lock()
                        .expect("conn list poisoned")
                        .push(tracked);
                }
                let service = Arc::clone(&service);
                let admission = Arc::clone(&accept_admission);
                std::thread::spawn(move || {
                    handle_connection(&*service, stream, config, &admission);
                });
            }
        });
        Ok(ServerHandle {
            addr: bound,
            stop,
            conns,
            accept_thread: Some(accept_thread),
            admission,
        })
    }
}

/// The streaming serve sink: buffers answers into a reusable block and
/// flushes a chunk frame whenever it fills. Deadline hits and socket
/// failures both stop the enumeration by returning `false` from `push` —
/// the cooperative-cancellation hook — and are recorded for the dispatch
/// loop to translate into an error frame (or a hangup).
struct ChunkSink<'w, W: Write> {
    writer: &'w mut W,
    payload: PayloadWriter,
    block: AnswerBlock,
    chunk_tuples: usize,
    deadline: Option<Instant>,
    pushes: u64,
    total: u64,
    failure: Option<CqcError>,
}

impl<'w, W: Write> ChunkSink<'w, W> {
    fn new(writer: &'w mut W, chunk_tuples: usize, deadline: Option<Instant>) -> ChunkSink<'w, W> {
        ChunkSink {
            writer,
            payload: PayloadWriter::new(),
            block: AnswerBlock::new(),
            chunk_tuples: chunk_tuples.max(1),
            deadline,
            pushes: 0,
            total: 0,
            failure: None,
        }
    }

    fn flush_chunk(&mut self) -> Result<()> {
        if self.block.is_empty() {
            return Ok(());
        }
        cqc_common::frame::encode_chunk(&mut self.payload, &self.block, 0, self.block.len());
        cqc_common::frame::write_frame(self.writer, FrameKind::Chunk, self.payload.bytes())?;
        self.block.clear();
        Ok(())
    }

    /// Flushes the tail chunk; the sink's work is done after this.
    fn finish(&mut self) -> Result<()> {
        self.flush_chunk()
    }
}

impl<W: Write> AnswerSink for ChunkSink<'_, W> {
    fn push(&mut self, tuple: &[Value]) -> bool {
        // Check the deadline on push 0 and every MASK+1 thereafter, so a
        // zero deadline fires before any work and a long stream pays one
        // clock read per few hundred answers.
        if self.pushes & DEADLINE_CHECK_MASK == 0 {
            if let Some(deadline) = self.deadline {
                if Instant::now() >= deadline {
                    self.failure = Some(CqcError::Protocol {
                        code: code::DEADLINE,
                        detail: format!("request deadline elapsed after {} answers", self.total),
                    });
                    return false;
                }
            }
        }
        self.pushes += 1;
        self.block.push(tuple);
        self.total += 1;
        if self.block.len() >= self.chunk_tuples {
            if let Err(e) = self.flush_chunk() {
                // Socket gone (client cancelled) or codec refusal: stop
                // enumerating mid-block.
                self.failure = Some(e);
                return false;
            }
        }
        true
    }
}

fn send_error(writer: &mut impl Write, payload: &mut PayloadWriter, e: &CqcError) -> Result<()> {
    protocol::encode_error(payload, e);
    cqc_common::frame::write_frame(writer, FrameKind::Error, payload.bytes())?;
    writer.flush()?;
    Ok(())
}

fn send_epochs(
    writer: &mut impl Write,
    payload: &mut PayloadWriter,
    kind: FrameKind,
    epochs: &[u64],
) -> Result<()> {
    protocol::encode_epoch_reply(payload, epochs);
    cqc_common::frame::write_frame(writer, kind, payload.bytes())?;
    writer.flush()?;
    Ok(())
}

/// One connection's read-dispatch-reply loop. Request-level failures are
/// answered with an error frame and the connection stays up; transport
/// failures (peer gone, malformed frame) end the loop.
///
/// Only [`FrameKind::Serve`] passes through admission control: health
/// probes and updates are answered inline right here, so a saturated
/// serve queue can never starve liveness checks or writes.
fn handle_connection(
    service: &dyn BlockService,
    stream: TcpStream,
    config: NetServerConfig,
    admission: &AdmissionController,
) {
    let Ok(mut read_half) = stream.try_clone() else {
        return;
    };
    let mut writer = BufWriter::new(stream);
    let mut frames = FrameReader::new();
    let mut payload = PayloadWriter::new();
    loop {
        let (kind, body) = match frames.read_frame(&mut read_half) {
            Ok(f) => f,
            Err(e @ CqcError::Protocol { .. }) => {
                // Tell the peer why before hanging up (best effort: it may
                // be speaking a different protocol entirely).
                let _ = send_error(&mut writer, &mut payload, &e);
                return;
            }
            Err(_) => return, // peer disconnected
        };
        let outcome: Result<()> = match kind {
            FrameKind::Health => send_epochs(
                &mut writer,
                &mut payload,
                FrameKind::HealthOk,
                &service.version(),
            ),
            FrameKind::Register => match protocol::parse_register(body)
                .and_then(|r| service.register_view(&r.name, &r.query, &r.pattern, &r.strategy))
            {
                Ok(epochs) => {
                    send_epochs(&mut writer, &mut payload, FrameKind::RegisterOk, &epochs)
                }
                Err(e) => send_error(&mut writer, &mut payload, &e),
            },
            FrameKind::Update => match protocol::parse_update_preconditioned(body).and_then(
                |(delta, precondition)| {
                    service.apply_update_preconditioned(&delta, precondition.as_deref())
                },
            ) {
                Ok(epochs) => send_epochs(&mut writer, &mut payload, FrameKind::UpdateOk, &epochs),
                Err(e) => send_error(&mut writer, &mut payload, &e),
            },
            FrameKind::Serve => {
                serve_one(service, body, &mut writer, &mut payload, &config, admission)
            }
            other => {
                let _ = send_error(
                    &mut writer,
                    &mut payload,
                    &protocol::unexpected_frame("as a request", other),
                );
                return;
            }
        };
        if outcome.is_err() {
            return; // the reply could not be written: connection is dead
        }
    }
}

/// Dispatches one serve request: decode the optional deadline/priority
/// tail, shed budget-dead requests before any work, run admission, then
/// stream chunks under the effective deadline and close with `ServeDone`
/// or an error frame.
fn serve_one(
    service: &dyn BlockService,
    body: &[u8],
    writer: &mut BufWriter<TcpStream>,
    payload: &mut PayloadWriter,
    config: &NetServerConfig,
    admission: &AdmissionController,
) -> Result<()> {
    let req = match protocol::parse_serve(body) {
        Ok(r) => r,
        Err(e) => return send_error(writer, payload, &e),
    };
    let tail = req.tail.unwrap_or_default();
    let arrived = Instant::now();
    let wire_deadline = tail.budget_ns.map(|ns| arrived + Duration::from_nanos(ns));
    // Cost-based shed: if the view's measured serve cost is known and
    // the remaining budget cannot cover it, the serve would only burn
    // server time to produce a mid-stream DEADLINE — refuse it now,
    // before it occupies queue space or a slot.
    if let (Some(budget_ns), Some(cost_ns)) = (tail.budget_ns, service.serve_cost_ns(&req.view)) {
        if budget_ns < cost_ns {
            admission.record_cost_shed(tail.priority);
            return send_error(
                writer,
                payload,
                &deadline_error(&format!(
                    "deadline budget of {budget_ns} ns cannot cover the view's measured \
                     serve cost of {cost_ns} ns"
                )),
            );
        }
    }
    // Expired-on-arrival and overload shedding live in the controller;
    // the wire deadline also bounds queue wait.
    let permit = match admission.admit(tail.priority, wire_deadline) {
        Ok(p) => p,
        Err(e) => return send_error(writer, payload, &e),
    };
    // The serving deadline is the tighter of the server's own budget
    // (counted from admission, not arrival — queue wait already charged
    // against the wire budget) and the request's wire budget.
    let own_deadline = config.request_deadline.map(|d| Instant::now() + d);
    let deadline = match (own_deadline, wire_deadline) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, b) => a.or(b),
    };
    let mut sink = ChunkSink::new(writer, config.chunk_tuples, deadline);
    let served = service.serve_into(&req.view, &req.bound, &mut sink);
    let failure = sink.failure.take();
    let total = sink.total;
    let tail_flush = match failure {
        None => sink.finish(),
        Some(_) => Ok(()),
    };
    drop(permit);
    match (served, failure, tail_flush) {
        (Err(e), _, _) => send_error(writer, payload, &e),
        (Ok(_), Some(CqcError::Io(m)), _) => Err(CqcError::Io(m)), // peer gone mid-stream
        (Ok(_), Some(e), _) => send_error(writer, payload, &e),    // deadline
        (Ok(_), None, Err(e)) => Err(e),                           // tail flush failed: peer gone
        (Ok(_), None, Ok(())) => {
            protocol::encode_serve_done(payload, total, &service.version());
            cqc_common::frame::write_frame(writer, FrameKind::ServeDone, payload.bytes())?;
            writer.flush()?;
            Ok(())
        }
    }
}
