//! `cqe` — the command-line front door to [`cqc_engine::Engine`].
//!
//! Reads commands from script files given as arguments, from `-e '<cmd>'`
//! flags, or from stdin (one command per line; `#` starts a comment):
//!
//! ```text
//! load <rel> <file.csv> [header]       load a CSV relation
//! gen triangle <rows> [seed]           synthetic R, S, T (uniform pairs)
//! gen social <nodes> <edges> [seed]    skewed friendship graph R
//! gen star <k> <rows> [seed]           star relations R1..Rk
//! register <name> <pattern> <strategy> <query>
//!                                      e.g. register mutual bfb auto
//!                                           "V(x,y,z) :- R(x,y), R(y,z), R(z,x)"
//! ask <name> <v1> <v2> ...             answer one access request
//! exists <name> <v1> ...               boolean probe
//! explain <name>                       strategy selection + representation
//! update [--rm] <rel> <v1> <v2> ...    insert (or with --rm delete) one
//!                                      tuple (bumps the epoch,
//!                                      maintains/rebuilds cached views)
//! serve <addr> [--shard=<i>/<n> <pattern> "<query>"] [--data-dir=<dir>]
//!                                      expose the current database as a
//!                                      shard server (blocks until killed);
//!                                      --shard keeps only slice i of an
//!                                      n-way hash split derived from the
//!                                      query's partition spec; --data-dir
//!                                      makes every update durable (WAL +
//!                                      snapshots) — a dir already holding
//!                                      state is recovered to its exact
//!                                      pre-crash epoch, winning over the
//!                                      script's own database
//! route <addr> <pattern> "<query>" --shards=<a,b,c>
//!                                      run the front-door router: fans
//!                                      requests out across the shard
//!                                      fleet and merges the streams back
//!                                      into exact lexicographic order
//! bench <name> <requests> <threads> [seed] [witness|random]
//!       [--with-updates[=<rounds>]] [--json=<path>]
//!                                      serve a generated request stream;
//!                                      --with-updates interleaves mixed
//!                                      insert/delete deltas and cross-checks
//!                                      answers against a naive oracle,
//!                                      --json writes a summary file
//! stats                                catalog + update counters
//! demo                                 canned end-to-end tour
//! help | quit
//! ```
//!
//! Strategies: `auto`, `auto:<budget>`, `materialize`, `direct`,
//! `factorized`, `tau:<τ>`, `budget:<exp>`, `decomposed:<exp>`.
//!
//! `bench --profile enum` switches the benchmark into the enumeration
//! profile: the same request stream is served twice through the legacy
//! per-tuple pull path and twice through the flat-block pipeline (first
//! pass warms the scratch buffers, second is measured), reporting
//! answers/sec and — because this binary runs under the vendored counting
//! allocator — exact heap allocations per answer for both.
//!
//! `bench --profile shard` builds a sharded engine over the current
//! database at 1/2/4/8 shards and reports the scaling curve: parallel
//! register (build) time, steady-state aggregate answers/s, and exact
//! allocations per answer per shard (0 once warm). Every shard count is
//! cross-checked against the unsharded answer total.
//!
//! `bench --profile build` measures the cold path: a register's per-phase
//! breakdown (permutation sort, index gather, heavy dictionary, LP/width
//! solves) plus the shared-plan vs plan-per-shard sharded register curve —
//! plan-once registration solves strategy selection exactly once and ships
//! it to all shards.
//!
//! `bench --profile net` stands up a loopback fleet — four shard servers
//! on 127.0.0.1 behind a [`cqc_net::Router`] — and serves the identical
//! request stream remotely and through an in-process 4-shard
//! [`cqc_engine::ShardedEngine`] under the same partition spec, reporting
//! answers/s on both paths, wire bytes per answer, and a tuple-for-tuple
//! stream-equivalence verdict (also re-checked after an interleaved
//! update through both paths).
//!
//! `bench --profile chaos` is the fault-tolerance gate: a 2-shard ×
//! 2-replica loopback fleet is driven through a scripted fault schedule —
//! stalls, refusals, epoch lies, mid-stream deaths, real process-level
//! replica kills, a whole-group outage, and revival — while every answer
//! stream is compared against in-process oracles. It reports availability
//! (must be 100% while each shard keeps one live replica), failover
//! latency percentiles, circuit-breaker cycle counts, and the
//! degraded-mode coverage verdict.
//!
//! `bench --profile mix` is the overload gate: one admission-controlled
//! shard server (its service time padded to a fixed 10 ms so capacity is
//! host-independent) is driven by an open-loop, Zipf-skewed mix of
//! Interactive/Batch/Internal serves at 0.5×/1×/2× its measured
//! capacity, with deadline budgets and priorities on the wire, a shared
//! client-side retry budget, and concurrent Update/Health traffic. It
//! reports per-class accepted-latency percentiles, goodput, shed counts
//! (client- and server-side, by class and by reason), and retry
//! amplification, and gates: nothing hangs, accepted Interactive p99
//! meets its SLO at 2×, goodput holds a floor under overload, Batch
//! sheds no less than Interactive, amplification stays under 2×, and
//! Update/Health never fail behind queued serves.
//!
//! `bench --profile recovery` is the durability gate: a child
//! `cqe serve --data-dir` process is hard-killed (SIGKILL) at scripted
//! points — between durable updates, *mid-apply* right after the WAL
//! fsync but before the acknowledgment, and with garbage appended to the
//! log while it is down — and every restart must rejoin at its exact
//! pre-crash epoch, truncate torn tails cleanly, and serve answer streams
//! byte-identical to an uninterrupted in-process oracle. Pass
//! `--gen="<gen args>"` matching the script's own `gen` line so the child
//! rebuilds the same dataset (same seed, same rows) on its first boot.

use cqc_bench::{fmt_bytes, fmt_ns, BatchStats};
use cqc_common::alloc as cqalloc;
use cqc_common::frame::{code, ServePriority};
use cqc_common::AnswerBlock;
use cqc_engine::{BlockService, Engine, Policy, Request, UpdateReport};
use cqc_join::naive::evaluate_view;
use cqc_net::{
    AdmissionStats, BreakerConfig, ChaosService, ClientConfig, Deadline, Fault, NetServer,
    NetServerConfig, RetryBudget, RetryBudgetConfig, RetryPolicy, Router, ServeMode, ServerHandle,
    ShardClient,
};
use cqc_query::parser::parse_adorned;
use cqc_storage::csv::CsvOptions;
use cqc_storage::{Delta, Partitioning};
use cqc_workload::{
    graphs, mixed_delta, random_requests, uniform_relation, witness_requests, Zipf,
};
use std::io::BufRead;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Every allocation in this binary is counted, so `bench --profile enum`
/// can report allocations-per-answer exactly (the counter costs a few
/// nanoseconds per allocation event and nothing per answer).
#[global_allocator]
static ALLOC: cqalloc::CountingAlloc = cqalloc::CountingAlloc;

fn main() {
    let mut commands: Vec<String> = Vec::new();
    let mut from_stdin = true;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-e" => {
                let Some(cmd) = args.next() else {
                    eprintln!("cqe: -e needs a command");
                    std::process::exit(2);
                };
                commands.push(cmd);
                from_stdin = false;
            }
            "-h" | "--help" => {
                print_help();
                return;
            }
            path => {
                match std::fs::read_to_string(path) {
                    Ok(text) => commands.extend(text.lines().map(str::to_string)),
                    Err(e) => {
                        eprintln!("cqe: cannot read script `{path}`: {e}");
                        std::process::exit(2);
                    }
                }
                from_stdin = false;
            }
        }
    }

    let mut engine = Engine::new(cqc_storage::Database::new());
    let mut failed = false;
    let mut run = |engine: &mut Engine, line: &str| {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return true;
        }
        match execute(engine, line) {
            Ok(keep_going) => keep_going,
            Err(msg) => {
                eprintln!("error: {msg}");
                failed = true;
                true
            }
        }
    };

    if from_stdin {
        let stdin = std::io::stdin();
        for line in stdin.lock().lines() {
            let Ok(line) = line else { break };
            if !run(&mut engine, &line) {
                break;
            }
        }
    } else {
        for line in &commands {
            if !run(&mut engine, line) {
                break;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}

fn print_help() {
    println!("cqe — serve conjunctive-query views from compressed representations");
    println!();
    println!("usage: cqe [script ...] [-e '<command>'] (no args: read stdin)");
    println!();
    println!("commands:");
    println!("  load <rel> <file.csv> [header]");
    println!("  gen triangle <rows> [seed] | gen social <nodes> <edges> [seed] | gen star <k> <rows> [seed]");
    println!("  register <name> <pattern> <strategy> <query>");
    println!("  ask <name> <values...>   exists <name> <values...>   explain <name>");
    println!("  update [--rm] <rel> <values...>");
    println!("  serve <addr> [--shard=<i>/<n> <pattern> \"<query>\"]");
    println!("        [--data-dir=<dir>] [--max-inflight=<n>] [--queue-depth=<n>]");
    println!("        [--deadline-ms=<n>] [--brownout-ms=<n>]");
    println!("        shard server over the current database (blocks until killed);");
    println!("        --shard keeps slice i of an n-way hash split for the query;");
    println!("        --data-dir makes updates durable (WAL + snapshots) — a dir");
    println!("        that already holds state is recovered and wins over the script");
    println!("  route <addr> <pattern> \"<query>\" --shards=<a,b,c>");
    println!("        [--max-inflight=<n>] [--queue-depth=<n>] [--deadline-ms=<n>]");
    println!("        [--brownout-ms=<n>]");
    println!("        front-door router: health-checks the fleet, fans out, merges");
    println!("  bench <name> <requests> <threads> [seed] [witness|random]");
    println!(
        "        [--with-updates[=<rounds>]] [--profile enum|shard|build|net|chaos|mix|recovery] \
[--json=<path>]"
    );
    println!("        --profile enum:  flat-block vs legacy pipeline (answers/s,");
    println!("        heap allocations per answer under the counting allocator)");
    println!("        --profile shard: 1/2/4/8-shard scaling curve (parallel build,");
    println!("        multicore serve, 0 allocs/answer per shard)");
    println!("        --profile build: register-time breakdown (sort/index/dict/lp)");
    println!("        + shared-plan vs plan-per-shard register curve");
    println!("        --profile net:   loopback fleet vs in-process sharded serve");
    println!("        (answers/s both paths, wire bytes/answer, stream equivalence)");
    println!("        --profile chaos: replicated fleet under scripted faults (kills,");
    println!("        stalls, refusals, epoch lies, mid-stream deaths; availability,");
    println!("        failover latency, breaker cycle, degraded coverage)");
    println!("        --profile mix:   open-loop Zipf mixed workload against one");
    println!("        admission-controlled server at 0.5x/1x/2x measured capacity");
    println!("        (per-class latency/goodput/sheds, retry amplification, SLOs)");
    println!("        --profile recovery: kill -9 a child `serve --data-dir` process");
    println!("        at scripted points (between updates, mid-apply, torn WAL tail);");
    println!("        every restart must rejoin at the exact pre-crash epoch with");
    println!("        byte-identical streams (needs --gen=\"<gen args>\", same seed)");
    println!("        [--baseline-register-ns=<n>: record a speedup vs that baseline]");
    println!("  stats   demo   help   quit");
    println!();
    println!("strategies: auto  auto:<budget>  materialize  direct  factorized");
    println!("            tau:<t>  budget:<exp>  decomposed:<exp>");
}

/// Splits a command line into words, honoring double quotes (queries
/// contain spaces and commas).
fn split_words(line: &str) -> Result<Vec<String>, String> {
    let mut words = Vec::new();
    let mut cur = String::new();
    let mut in_quotes = false;
    for c in line.chars() {
        match c {
            '"' => in_quotes = !in_quotes,
            c if c.is_whitespace() && !in_quotes => {
                if !cur.is_empty() {
                    words.push(std::mem::take(&mut cur));
                }
            }
            c => cur.push(c),
        }
    }
    if in_quotes {
        return Err(format!("unterminated quote in `{line}`"));
    }
    if !cur.is_empty() {
        words.push(cur);
    }
    Ok(words)
}

/// Strategy tokens share one grammar with the wire protocol
/// ([`Policy::parse`]), so a token accepted here is accepted verbatim by a
/// remote `register` through the router.
fn parse_strategy(token: &str) -> Result<Policy, String> {
    Policy::parse(token).map_err(|e| e.to_string())
}

/// Executes one command; `Ok(false)` means quit.
fn execute(engine: &mut Engine, line: &str) -> Result<bool, String> {
    let words = split_words(line)?;
    let Some(cmd) = words.first() else {
        // e.g. a line of only quotes: nothing to do.
        return Ok(true);
    };
    let cmd = cmd.as_str();
    let rest = &words[1..];
    match cmd {
        "help" => print_help(),
        "quit" | "exit" => return Ok(false),
        "load" => {
            let [rel, path, opts @ ..] = rest else {
                return Err("usage: load <rel> <file.csv> [header]".into());
            };
            let has_header = match opts {
                [] => false,
                [o] if o == "header" => true,
                _ => {
                    return Err(format!(
                        "unknown load option(s) `{}` (only `header` is accepted)",
                        opts.join(" ")
                    ));
                }
            };
            let file = std::fs::File::open(path).map_err(|e| format!("open `{path}`: {e}"))?;
            engine
                .load_csv(
                    rel,
                    std::io::BufReader::new(file),
                    CsvOptions { has_header },
                )
                .map_err(|e| e.to_string())?;
            let db = engine.db();
            let r = db.get(rel).expect("just loaded");
            println!(
                "loaded `{rel}`: {} tuples, arity {} (|D| = {}, epoch {})",
                r.len(),
                r.arity(),
                db.size(),
                db.epoch()
            );
        }
        "gen" => gen(engine, rest)?,
        "register" => {
            let [name, pattern, strategy, query] = rest else {
                return Err("usage: register <name> <pattern> <strategy> \"<query>\"".into());
            };
            let policy = parse_strategy(strategy)?;
            let rv = engine
                .register_text(name, query, pattern, policy)
                .map_err(|e| e.to_string())?;
            println!(
                "registered `{name}` [{}]: {}",
                rv.selection.tag, rv.selection.reason
            );
        }
        "ask" | "exists" => {
            let [name, vals @ ..] = rest else {
                return Err(format!("usage: {cmd} <name> <values...>"));
            };
            let bound: Vec<u64> = vals
                .iter()
                .map(|v| engine.resolve_value(v).map_err(|e| e.to_string()))
                .collect::<Result<_, _>>()?;
            if cmd == "exists" {
                let yes = engine.exists(name, &bound).map_err(|e| e.to_string())?;
                println!("{yes}");
            } else {
                let served = engine
                    .serve(&Request {
                        view: name.clone(),
                        bound,
                    })
                    .map_err(|e| e.to_string())?;
                for t in served.tuples() {
                    let row: Vec<String> = t.iter().map(|&v| engine.display_value(v)).collect();
                    println!("{}", row.join(", "));
                }
                println!(
                    "-- {} tuples in {} (max delay {})",
                    served.len(),
                    fmt_ns(served.delay.total_ns),
                    fmt_ns(served.delay.max_ns)
                );
            }
        }
        "explain" => {
            let [name] = rest else {
                return Err("usage: explain <name>".into());
            };
            println!("{}", engine.explain(name).map_err(|e| e.to_string())?);
        }
        "update" => {
            let usage = "usage: update [--rm] <rel> <values...>";
            let (removing, rest) = match rest {
                [flag, rest @ ..] if flag == "--rm" => (true, rest),
                _ => (false, rest),
            };
            let [rel, vals @ ..] = rest else {
                return Err(usage.into());
            };
            if vals.is_empty() {
                return Err(usage.into());
            }
            let tuple: Vec<u64> = vals
                .iter()
                .map(|v| engine.resolve_value(v).map_err(|e| e.to_string()))
                .collect::<Result<_, _>>()?;
            let mut delta = Delta::new();
            if removing {
                delta.remove(rel, tuple);
            } else {
                delta.insert(rel, tuple);
            }
            let report = engine.update(&delta).map_err(|e| e.to_string())?;
            println!(
                "applied {} delta to `{rel}` (epoch {}): {} maintained, {} rebuilt, \
                 {} restamped",
                if removing { "remove" } else { "insert" },
                report.epoch,
                report.maintained,
                report.rebuilt,
                report.restamped
            );
        }
        "stats" => {
            let s = engine.catalog_stats();
            let u = engine.update_stats();
            println!(
                "catalog: {} entries, {} resident (budget {}), {} hits, {} misses, \
                 {} builds, {} maintained, {} evictions, {} invalidations",
                s.entries,
                fmt_bytes(s.resident_bytes),
                fmt_bytes(s.budget_bytes),
                s.hits,
                s.misses,
                s.builds,
                s.maintained,
                s.evictions,
                s.invalidations
            );
            println!(
                "updates: {} deltas (epoch {}), {} maintained, {} rebuilt, {} restamped",
                u.deltas,
                engine.epoch(),
                u.maintained,
                u.rebuilt,
                u.restamped
            );
        }
        "serve" => serve_cmd(engine, rest)?,
        "route" => route_cmd(engine, rest)?,
        "bench" => bench(engine, rest)?,
        "demo" => {
            for cmd in [
                "gen social 400 4000 7",
                "register mutual bfb auto \"V(x,y,z) :- R(x,y), R(y,z), R(z,x)\"",
                "explain mutual",
                "bench mutual 2000 4 7 witness",
                "stats",
            ] {
                println!("cqe> {cmd}");
                execute(engine, cmd)?;
            }
        }
        other => return Err(format!("unknown command `{other}` (try `help`)")),
    }
    Ok(true)
}

fn gen(engine: &mut Engine, rest: &[String]) -> Result<(), String> {
    let usage = "usage: gen triangle <rows> [seed] | gen social <nodes> <edges> [seed] \
                 | gen star <k> <rows> [seed]";
    let arg = |i: usize| -> Result<u64, String> {
        rest.get(i)
            .ok_or_else(|| usage.to_string())?
            .parse::<u64>()
            .map_err(|_| format!("bad number `{}`", rest[i]))
    };
    // A *present* but unparseable seed is an error, not the default.
    let seed_arg = |i: usize| -> Result<u64, String> {
        match rest.get(i) {
            None => Ok(7),
            Some(_) => arg(i),
        }
    };
    match rest.first().map(String::as_str) {
        Some("triangle") => {
            let rows = arg(1)? as usize;
            let seed = seed_arg(2)?;
            let mut rng = cqc_workload::rng(seed);
            let domain = ((rows as f64).sqrt() as u64 * 2).max(4);
            for name in ["R", "S", "T"] {
                let r = uniform_relation(&mut rng, name, 2, rows, domain);
                engine.add_relation(r).map_err(|e| e.to_string())?;
            }
            println!(
                "generated triangle workload: R, S, T with ≤{rows} pairs over 0..{domain} \
                 (|D| = {})",
                engine.db().size()
            );
        }
        Some("social") => {
            let nodes = arg(1)?;
            let edges = arg(2)? as usize;
            let seed = seed_arg(3)?;
            let mut rng = cqc_workload::rng(seed);
            let r = graphs::friendship_graph(&mut rng, nodes, edges, 1.0);
            engine.add_relation(r).map_err(|e| e.to_string())?;
            println!(
                "generated social graph `R`: {} directed friendship edges over {nodes} users",
                engine.db().size()
            );
        }
        Some("star") => {
            let k = arg(1)? as usize;
            let rows = arg(2)? as usize;
            let seed = seed_arg(3)?;
            if k == 0 {
                return Err("star needs k ≥ 1".into());
            }
            let mut rng = cqc_workload::rng(seed);
            let domain = (rows as u64 / 4).max(4);
            for i in 1..=k {
                let r = uniform_relation(&mut rng, &format!("R{i}"), 2, rows, domain);
                engine.add_relation(r).map_err(|e| e.to_string())?;
            }
            println!(
                "generated star workload: R1..R{k} with ≤{rows} pairs (|D| = {})",
                engine.db().size()
            );
        }
        _ => return Err(usage.into()),
    }
    Ok(())
}

/// Server tuning flags shared by `serve` and `route`
/// (`--max-inflight=<n>`, `--queue-depth=<n>`, `--deadline-ms=<n>`,
/// `--brownout-ms=<n>`); unknown flags are the caller's to reject.
fn net_server_config(opts: &[String]) -> Result<NetServerConfig, String> {
    let mut config = NetServerConfig::default();
    for opt in opts {
        let Some(flag) = opt.strip_prefix("--") else {
            continue;
        };
        match flag.split_once('=') {
            Some(("max-inflight", v)) => {
                config.max_inflight = v
                    .parse()
                    .map_err(|_| format!("bad --max-inflight value `{v}`"))?;
            }
            Some(("queue-depth", v)) => {
                config.queue_depth = v
                    .parse()
                    .map_err(|_| format!("bad --queue-depth value `{v}`"))?;
            }
            Some(("deadline-ms", v)) => {
                let ms: u64 = v
                    .parse()
                    .map_err(|_| format!("bad --deadline-ms value `{v}`"))?;
                config.request_deadline = Some(Duration::from_millis(ms));
            }
            Some(("brownout-ms", v)) => {
                let ms: u64 = v
                    .parse()
                    .map_err(|_| format!("bad --brownout-ms value `{v}`"))?;
                config.brownout_after = Duration::from_millis(ms);
            }
            _ => {}
        }
    }
    Ok(config)
}

/// Rejects any `--flag` not in `known` (the positional words were already
/// consumed by the caller).
fn reject_unknown_flags(opts: &[String], known: &[&str]) -> Result<(), String> {
    for opt in opts {
        if let Some(flag) = opt.strip_prefix("--") {
            let key = flag.split_once('=').map_or(flag, |(k, _)| k);
            if !known.contains(&key) {
                return Err(format!("unknown flag `--{key}`"));
            }
        }
    }
    Ok(())
}

/// `serve <addr> [--shard=<i>/<n> <pattern> "<query>"] [--max-inflight=<n>]
/// [--deadline-ms=<n>]` — expose the current database as a shard server.
///
/// Views are registered *remotely* (by a router or any protocol client),
/// so the command only needs data: with `--shard=<i>/<n>` the local
/// database is hash-split under the partition spec derived for the given
/// adorned query and only slice `i` is served — every fleet member runs
/// the same deterministic script with a different `i` and the slices line
/// up with what a router under the same spec expects. Blocks until the
/// process is killed.
fn serve_cmd(engine: &mut Engine, rest: &[String]) -> Result<(), String> {
    let usage = "usage: serve <addr> [--shard=<i>/<n> <pattern> \"<query>\"] \
                 [--data-dir=<dir>] [--max-inflight=<n>] [--queue-depth=<n>] \
                 [--deadline-ms=<n>] [--brownout-ms=<n>]";
    let [addr, opts @ ..] = rest else {
        return Err(usage.into());
    };
    reject_unknown_flags(
        opts,
        &[
            "shard",
            "data-dir",
            "max-inflight",
            "queue-depth",
            "deadline-ms",
            "brownout-ms",
        ],
    )?;
    let data_dir = opts
        .iter()
        .find_map(|o| o.strip_prefix("--data-dir="))
        .map(str::to_string);
    let config = net_server_config(opts)?;
    let shard = opts
        .iter()
        .find_map(|o| o.strip_prefix("--shard="))
        .map(|v| -> Result<(usize, usize), String> {
            let (i, n) = v
                .split_once('/')
                .ok_or_else(|| format!("bad --shard value `{v}` (want <i>/<n>)"))?;
            let i: usize = i.parse().map_err(|_| format!("bad shard index `{i}`"))?;
            let n: usize = n.parse().map_err(|_| format!("bad shard count `{n}`"))?;
            if n == 0 || i >= n {
                return Err(format!("shard index {i} out of range for {n} shard(s)"));
            }
            Ok((i, n))
        })
        .transpose()?;
    let positional: Vec<&String> = opts.iter().filter(|o| !o.starts_with("--")).collect();

    // Take the engine (this command never returns); the REPL keeps an
    // empty stand-in it will never get to use.
    let owned = std::mem::replace(engine, Engine::new(cqc_storage::Database::new()));
    let mut serving: Engine = match shard {
        None => {
            if !positional.is_empty() {
                return Err(usage.into());
            }
            owned
        }
        Some((i, n)) => {
            let [pattern, query] = positional.as_slice() else {
                return Err(usage.into());
            };
            let view = parse_adorned(query, pattern).map_err(|e| e.to_string())?;
            let db = owned.db();
            let spec = cqc_engine::spec_for_view(&view, &db);
            let part = Partitioning::new(spec, n).map_err(|e| e.to_string())?;
            let mut slices = part.split_database(&db).map_err(|e| e.to_string())?;
            let slice = slices.swap_remove(i);
            println!(
                "shard {i}/{n}: keeping {} of {} tuples under the `{query}` spec",
                slice.size(),
                db.size()
            );
            Engine::new(slice)
        }
    };
    // Durability: a data dir that already holds state wins over whatever
    // the script built — a respawned replica rejoins at its exact
    // pre-crash epoch; a fresh dir adopts the script's database as the
    // initial checkpoint and logs every update from here on.
    if let Some(dir) = &data_dir {
        if cqc_durable::DurableStore::exists(std::path::Path::new(dir)) {
            serving = Engine::open(dir).map_err(|e| e.to_string())?;
            let stats = serving.recovery_stats().unwrap_or_default();
            println!(
                "recovered data dir `{dir}`: epoch {}, {} wal record(s) replayed, \
                 {} torn byte(s) truncated (re-register views remotely)",
                stats.epoch, stats.replayed, stats.truncated_bytes
            );
        } else {
            serving.attach_durable(dir).map_err(|e| e.to_string())?;
            println!(
                "attached fresh data dir `{dir}` (checkpointed at epoch {})",
                serving.epoch()
            );
        }
    }
    let service: Arc<dyn BlockService> = Arc::new(serving);
    let handle = NetServer::spawn(service, addr, config).map_err(|e| e.to_string())?;
    println!(
        "shard server listening on {} (protocol v{}; register views remotely; ctrl-c to stop)",
        handle.addr(),
        cqc_common::frame::PROTOCOL_VERSION
    );
    loop {
        std::thread::park();
    }
}

/// `route <addr> <pattern> "<query>" --shards=<a,b,c> [--max-inflight=<n>]
/// [--queue-depth=<n>] [--deadline-ms=<n>] [--brownout-ms=<n>]` — run the
/// front-door router over a shard fleet.
///
/// The partition spec is derived from the *local* database and the given
/// adorned query — load or `gen` the same data (same seeds) the fleet was
/// split from so the spec matches the fleet's slices. Blocks until the
/// process is killed.
fn route_cmd(engine: &mut Engine, rest: &[String]) -> Result<(), String> {
    let usage = "usage: route <addr> <pattern> \"<query>\" --shards=<a,b,c> \
                 [--max-inflight=<n>] [--queue-depth=<n>] [--deadline-ms=<n>] \
                 [--brownout-ms=<n>]";
    let [addr, pattern, query, opts @ ..] = rest else {
        return Err(usage.into());
    };
    reject_unknown_flags(
        opts,
        &[
            "shards",
            "max-inflight",
            "queue-depth",
            "deadline-ms",
            "brownout-ms",
        ],
    )?;
    let config = net_server_config(opts)?;
    let shards: Vec<String> = opts
        .iter()
        .find_map(|o| o.strip_prefix("--shards="))
        .ok_or_else(|| usage.to_string())?
        .split(',')
        .map(str::to_string)
        .collect();
    let view = parse_adorned(query, pattern).map_err(|e| e.to_string())?;
    let spec = cqc_engine::spec_for_view(&view, &engine.db());
    let router =
        Router::connect(&shards, spec, ClientConfig::default()).map_err(|e| e.to_string())?;
    println!(
        "router connected to {} shard(s): {}",
        router.num_shards(),
        router.addrs().join(", ")
    );
    let handle = NetServer::spawn(Arc::new(router), addr, config).map_err(|e| e.to_string())?;
    println!(
        "router listening on {} (protocol v{}; ctrl-c to stop)",
        handle.addr(),
        cqc_common::frame::PROTOCOL_VERSION
    );
    loop {
        std::thread::park();
    }
}

/// Which benchmark flow `bench` runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BenchProfile {
    /// Delay-measuring batch serving (the default).
    Serve,
    /// Flat-block versus legacy pipeline (`--profile enum`).
    Enum,
    /// Sharded scaling curve across 1/2/4/8 shards (`--profile shard`).
    Shard,
    /// Build-path breakdown + shared-plan vs plan-per-shard register curve
    /// (`--profile build`).
    Build,
    /// Loopback fleet versus in-process sharded serve (`--profile net`).
    Net,
    /// Replicated loopback fleet under scripted faults (`--profile
    /// chaos`): availability, failover latency, breaker cycling, and
    /// degraded-mode coverage, gated against in-process oracles.
    Chaos,
    /// Open-loop Zipf-skewed mixed workload against one admission-
    /// controlled server at 0.5×/1×/2× measured capacity (`--profile
    /// mix`): per-class accepted latency percentiles, goodput, shed
    /// counts, retry amplification, and Health/Update liveness under
    /// overload.
    Mix,
    /// Kill-−9 crash/recovery harness (`--profile recovery`): a child
    /// `cqe serve --data-dir` process is killed at scripted points —
    /// including hard-killed mid-apply and with a torn WAL tail — and
    /// every restart must rejoin at its exact pre-crash epoch with
    /// byte-identical answer streams against an in-process oracle.
    Recovery,
}

/// Options accepted by `bench` after the positional arguments.
struct BenchOpts {
    seed: u64,
    witness: bool,
    /// `Some(rounds)` to interleave delta application with serving.
    updates: Option<usize>,
    json_path: Option<String>,
    profile: BenchProfile,
    /// Reference register time (ns) an earlier commit measured on this
    /// host, recorded into the build-profile JSON for the speedup-vs-
    /// baseline field (`--baseline-register-ns=<n>`).
    baseline_register_ns: Option<u64>,
    /// The `gen` arguments the recovery profile's child process replays to
    /// rebuild the parent's database on first boot
    /// (`--gen="triangle 400 7"` — must match the parent's own `gen`).
    gen: Option<String>,
}

fn parse_bench_opts(opts: &[String]) -> Result<BenchOpts, String> {
    let mut parsed = BenchOpts {
        seed: 7,
        witness: true,
        updates: None,
        json_path: None,
        profile: BenchProfile::Serve,
        baseline_register_ns: None,
        gen: None,
    };
    let mut positional = 0usize;
    let mut i = 0usize;
    while i < opts.len() {
        let opt = &opts[i];
        i += 1;
        if let Some(flag) = opt.strip_prefix("--") {
            let (key, mut val) = match flag.split_once('=') {
                Some((k, v)) => (k, Some(v.to_string())),
                None => (flag, None),
            };
            // `--profile enum` (space-separated) is accepted alongside
            // `--profile=enum`.
            if key == "profile" && val.is_none() {
                if let Some(next) = opts.get(i).filter(|n| !n.starts_with("--")) {
                    val = Some(next.clone());
                    i += 1;
                }
            }
            match key {
                "with-updates" => {
                    let rounds = match val.as_deref() {
                        None => 6,
                        Some(v) => v
                            .parse::<usize>()
                            .ok()
                            .filter(|&r| r >= 2)
                            .ok_or_else(|| format!("bad round count `{v}` (need ≥ 2)"))?,
                    };
                    parsed.updates = Some(rounds);
                }
                "json" => {
                    let Some(path) = val else {
                        return Err("--json needs a path (--json=<path>)".into());
                    };
                    parsed.json_path = Some(path);
                }
                "profile" => match val.as_deref() {
                    Some("enum") => parsed.profile = BenchProfile::Enum,
                    Some("shard") => parsed.profile = BenchProfile::Shard,
                    Some("build") => parsed.profile = BenchProfile::Build,
                    Some("net") => parsed.profile = BenchProfile::Net,
                    Some("chaos") => parsed.profile = BenchProfile::Chaos,
                    Some("mix") => parsed.profile = BenchProfile::Mix,
                    Some("recovery") => parsed.profile = BenchProfile::Recovery,
                    other => {
                        return Err(format!(
                            "unknown bench profile `{}` (`enum`, `shard`, `build`, `net`, \
                             `chaos`, `mix` and `recovery` exist)",
                            other.unwrap_or("")
                        ));
                    }
                },
                "gen" => {
                    let Some(v) = val else {
                        return Err("--gen needs a value (--gen=\"triangle 400 7\")".into());
                    };
                    parsed.gen = Some(v);
                }
                "baseline-register-ns" => {
                    let Some(v) = val else {
                        return Err("--baseline-register-ns needs a value".into());
                    };
                    parsed.baseline_register_ns = Some(
                        v.parse::<u64>()
                            .map_err(|_| format!("bad baseline register ns `{v}`"))?,
                    );
                }
                other => return Err(format!("unknown bench flag `--{other}`")),
            }
            continue;
        }
        match positional {
            0 => parsed.seed = opt.parse().map_err(|_| format!("bad seed `{opt}`"))?,
            1 => {
                parsed.witness = match opt.as_str() {
                    "witness" => true,
                    "random" => false,
                    other => return Err(format!("bad sampler `{other}` (witness|random)")),
                }
            }
            _ => return Err(format!("unexpected bench argument `{opt}`")),
        }
        positional += 1;
    }
    if parsed.profile != BenchProfile::Serve && parsed.updates.is_some() {
        return Err("--profile and --with-updates are mutually exclusive".into());
    }
    if parsed.gen.is_some() && parsed.profile != BenchProfile::Recovery {
        return Err("--gen only applies to --profile recovery".into());
    }
    Ok(parsed)
}

/// Cross-checks a few served answers against the naive oracle on the
/// current snapshot; any divergence is a stale-serve violation.
fn stale_serve_violations(
    engine: &Engine,
    rv: &cqc_engine::RegisteredView,
    probes: &[Request],
) -> Result<usize, String> {
    let db = engine.db();
    let mut violations = 0;
    for req in probes {
        let expect = evaluate_view(&rv.view, &db, &req.bound).map_err(|e| e.to_string())?;
        let mut got = engine
            .answer(&rv.name, &req.bound)
            .map_err(|e| e.to_string())?;
        got.sort_unstable();
        got.dedup();
        if got != expect {
            violations += 1;
        }
    }
    Ok(violations)
}

fn bench(engine: &mut Engine, rest: &[String]) -> Result<(), String> {
    let [name, n_req, threads, opts @ ..] = rest else {
        return Err(
            "usage: bench <name> <requests> <threads> [seed] [witness|random] \
                    [--with-updates[=<rounds>]] [--json=<path>]"
                .into(),
        );
    };
    let n_req: usize = n_req.parse().map_err(|_| "bad request count")?;
    let threads: usize = threads.parse().map_err(|_| "bad thread count")?;
    let opts = parse_bench_opts(opts)?;

    let rv = engine.view(name).map_err(|e| e.to_string())?;
    let mut rng = cqc_workload::rng(opts.seed);
    let bounds = if opts.witness {
        witness_requests(&mut rng, &rv.view, &engine.db(), n_req)
    } else {
        random_requests(&mut rng, &rv.view, &engine.db(), n_req)
    };
    match opts.profile {
        BenchProfile::Enum => {
            require_single_threaded("enum", threads)?;
            return bench_enum(engine, name, &bounds, opts.json_path.as_deref());
        }
        BenchProfile::Shard => {
            require_single_threaded("shard", threads)?;
            return bench_shard(engine, &rv, &bounds, opts.json_path.as_deref());
        }
        BenchProfile::Build => {
            require_single_threaded("build", threads)?;
            return bench_build(
                engine,
                &rv,
                opts.json_path.as_deref(),
                opts.baseline_register_ns,
            );
        }
        BenchProfile::Net => {
            require_single_threaded("net", threads)?;
            return bench_net(engine, &rv, &bounds, opts.json_path.as_deref());
        }
        BenchProfile::Chaos => {
            require_single_threaded("chaos", threads)?;
            return bench_chaos(&rv, engine, &bounds, opts.json_path.as_deref());
        }
        BenchProfile::Mix => {
            require_single_threaded("mix", threads)?;
            return bench_mix(&rv, engine, &bounds, opts.seed, opts.json_path.as_deref());
        }
        BenchProfile::Recovery => {
            require_single_threaded("recovery", threads)?;
            return bench_recovery(
                &rv,
                engine,
                &bounds,
                opts.gen.as_deref(),
                opts.json_path.as_deref(),
            );
        }
        BenchProfile::Serve => {}
    }
    let requests: Vec<Request> = bounds
        .into_iter()
        .map(|bound| Request {
            view: name.clone(),
            bound,
        })
        .collect();

    let mut view_relations: Vec<&str> = rv
        .view
        .query()
        .atoms
        .iter()
        .map(|a| a.relation.as_str())
        .collect();
    view_relations.sort_unstable();
    view_relations.dedup();

    let before = engine.catalog_stats();
    let mut updates = UpdateReport::default();
    let mut rounds_applied = 0usize;
    let mut violations = 0usize;
    // Serving-only wall time: delta application and oracle verification
    // stay outside it, so the reported (and JSON-archived) req/s tracks
    // the serve path, not the self-check harness.
    let mut serve_ns = 0u64;
    let mut batch = BatchStats::default();
    let mut served = 0usize;
    let mut measure = |engine: &Engine, reqs: &[Request]| -> Result<(), String> {
        // measure_batch drains without retaining tuples, so the reported
        // gaps are the representation's §2.3 enumeration delay, not Vec
        // reallocs.
        let t0 = std::time::Instant::now();
        let measured = engine
            .measure_batch(reqs, threads)
            .map_err(|e| e.to_string())?;
        serve_ns += t0.elapsed().as_nanos() as u64;
        served += measured.len();
        for d in &measured {
            batch.add(d);
        }
        Ok(())
    };
    match opts.updates {
        None => measure(engine, &requests)?,
        Some(rounds) => {
            let chunk = requests.len().div_ceil(rounds).max(1);
            let mut chunks = requests.chunks(chunk).peekable();
            while let Some(reqs) = chunks.next() {
                measure(engine, reqs)?;
                if chunks.peek().is_some() {
                    let delta = mixed_delta(&mut rng, &engine.db(), &view_relations, 3, 2);
                    let report = engine.update(&delta).map_err(|e| e.to_string())?;
                    rounds_applied += 1;
                    updates.epoch = report.epoch;
                    updates.delta_tuples += report.delta_tuples;
                    updates.maintained += report.maintained;
                    updates.rebuilt += report.rebuilt;
                    updates.restamped += report.restamped;
                    let probes: Vec<Request> =
                        chunks.peek().unwrap().iter().take(3).cloned().collect();
                    violations += stale_serve_violations(engine, &rv, &probes)?;
                }
            }
        }
    }
    let after = engine.catalog_stats();

    let batch = batch.finish();
    // Serving-phase rebuilds only: update-phase rebuilds are reported (and
    // judged) separately below.
    let rebuilds = (after.builds - before.builds) - updates.rebuilt as u64;

    println!(
        "bench `{name}`: {} requests on {threads} threads in {} \
         ({:.0} req/s, {} tuples)",
        served,
        fmt_ns(serve_ns),
        served as f64 / (serve_ns.max(1) as f64 / 1e9),
        batch.tuples
    );
    println!(
        "  delay: max {} | mean p99 {} | trie seeks {}",
        fmt_ns(batch.max_delay_ns),
        fmt_ns(batch.mean_p99_ns),
        batch.trie_seeks
    );
    println!(
        "  catalog: {} representation rebuilds during serving ({}), {} hits",
        rebuilds,
        if rebuilds == 0 {
            "cache-hit request path"
        } else {
            "catalog thrashing — raise the budget"
        },
        after.hits - before.hits
    );
    if opts.updates.is_some() {
        println!(
            "  updates: {rounds_applied} rounds, {} tuples queued, \
             delta-maintained: {}, rebuilt: {}, restamped: {}",
            updates.delta_tuples, updates.maintained, updates.rebuilt, updates.restamped
        );
        println!("  stale-serve violations: {violations}");
    }
    if let Some(path) = &opts.json_path {
        let fields = serve_json_fields(
            name,
            served,
            threads,
            serve_ns,
            &batch,
            rebuilds,
            opts.updates.map(|_| (rounds_applied, &updates, violations)),
        );
        write_json_summary(path, &fields)?;
    }
    if violations > 0 {
        return Err(format!(
            "{violations} stale-serve violation(s): answers diverged from the naive oracle"
        ));
    }
    Ok(())
}

/// The enumeration profile: serves the identical request stream through
/// the legacy per-tuple pull path (`Engine::answer`, one `Vec` per answer)
/// and through the flat-block pipeline (`Engine::with_view_server`), each
/// twice — the first pass warms caches and scratch buffers to their
/// high-water mark, the second is measured for wall time and (thanks to
/// the counting global allocator) exact heap allocation events.
fn bench_enum(
    engine: &Engine,
    name: &str,
    bounds: &[Vec<u64>],
    json_path: Option<&str>,
) -> Result<(), String> {
    // Before: the legacy pull path, materializing Vec<Tuple> per request.
    let legacy_pass = |engine: &Engine| -> Result<usize, String> {
        let mut answers = 0usize;
        for b in bounds {
            answers += engine.answer(name, b).map_err(|e| e.to_string())?.len();
        }
        Ok(answers)
    };
    legacy_pass(engine)?; // warm (builds the representation, touches caches)
    let snap = cqalloc::snapshot();
    let t0 = Instant::now();
    let legacy_answers = legacy_pass(engine)?;
    let legacy_ns = t0.elapsed().as_nanos() as u64;
    let legacy_allocs = cqalloc::snapshot().allocations_since(&snap);

    // After: the flat-block pipeline through one reusable ViewServer.
    // Warm-up and measurement share the server so the measured pass sees
    // steady-state scratch.
    let (flat_answers, flat_ns, flat_allocs) = engine
        .with_view_server(name, |server| -> Result<(usize, u64, u64), String> {
            let mut answers = 0usize;
            for b in bounds {
                server.serve(b).map_err(|e| e.to_string())?; // warm
            }
            let snap = cqalloc::snapshot();
            let t0 = Instant::now();
            for b in bounds {
                answers += server.serve(b).map_err(|e| e.to_string())?.len();
            }
            let ns = t0.elapsed().as_nanos() as u64;
            Ok((answers, ns, cqalloc::snapshot().allocations_since(&snap)))
        })
        .map_err(|e| e.to_string())??;

    if flat_answers != legacy_answers {
        return Err(format!(
            "enum profile self-check failed: flat path produced {flat_answers} answers, \
             legacy path {legacy_answers}"
        ));
    }

    let per_s = |answers: usize, ns: u64| answers as f64 / (ns.max(1) as f64 / 1e9);
    let per_answer = |allocs: u64, answers: usize| allocs as f64 / answers.max(1) as f64;
    let legacy_rate = per_s(legacy_answers, legacy_ns);
    let flat_rate = per_s(flat_answers, flat_ns);
    println!(
        "bench `{name}` [profile enum]: {} requests, {} answers",
        bounds.len(),
        flat_answers
    );
    println!(
        "  legacy pull path: {legacy_rate:.0} answers/s ({}), {legacy_allocs} allocs \
         ({:.3} per answer)",
        fmt_ns(legacy_ns),
        per_answer(legacy_allocs, legacy_answers)
    );
    println!(
        "  flat-block path:  {flat_rate:.0} answers/s ({}), {flat_allocs} allocs \
         ({:.3} per answer)",
        fmt_ns(flat_ns),
        per_answer(flat_allocs, flat_answers)
    );
    println!(
        "  speedup: {:.2}x, allocation events eliminated: {}",
        flat_rate / legacy_rate.max(1e-9),
        legacy_allocs.saturating_sub(flat_allocs)
    );
    if let Some(path) = json_path {
        let fields = vec![
            format!("\"view\": {}", json_string(name)),
            "\"profile\": \"enum\"".to_string(),
            format!("\"requests\": {}", bounds.len()),
            format!("\"answers\": {flat_answers}"),
            format!("\"legacy_wall_ns\": {legacy_ns}"),
            format!("\"legacy_answers_per_s\": {legacy_rate:.1}"),
            format!("\"legacy_allocs\": {legacy_allocs}"),
            format!(
                "\"legacy_allocs_per_answer\": {:.4}",
                per_answer(legacy_allocs, legacy_answers)
            ),
            format!("\"flat_wall_ns\": {flat_ns}"),
            format!("\"flat_answers_per_s\": {flat_rate:.1}"),
            format!("\"flat_allocs\": {flat_allocs}"),
            format!(
                "\"flat_allocs_per_answer\": {:.4}",
                per_answer(flat_allocs, flat_answers)
            ),
            format!("\"speedup\": {:.3}", flat_rate / legacy_rate.max(1e-9)),
        ];
        write_json_summary(path, &fields)?;
    }
    if flat_allocs > 0 {
        eprintln!(
            "warning: flat path performed {flat_allocs} allocation(s) in steady state \
             (expected 0)"
        );
    }
    Ok(())
}

/// The shard profile: builds a [`cqc_engine::ShardedEngine`] over the
/// current database at 1, 2, 4 and 8 shards, and reports the scaling curve
/// of **register** (the S per-shard representations built in parallel
/// under `std::thread::scope`) and of **steady-state serving** (the
/// shard-major flat-block loop, barrier-bracketed so the counting
/// allocator proves 0 allocs/answer per shard). Every shard count's answer
/// total is cross-checked against the unsharded engine. The 4-shard
/// answers/s is compared against 1 shard as a sanity floor (`floor_ok` in
/// the JSON; CI fails on regression — on a single-core host the curve is
/// flat and the floor is reported, not enforced, here).
fn bench_shard(
    engine: &Engine,
    rv: &cqc_engine::RegisteredView,
    bounds: &[Vec<u64>],
    json_path: Option<&str>,
) -> Result<(), String> {
    use cqc_engine::{ShardedBlocks, ShardedEngine, ShardedEngineConfig};

    // Unsharded oracle total (also warms the unsharded representation).
    let mut expected = 0usize;
    for b in bounds {
        expected += engine.answer(&rv.name, b).map_err(|e| e.to_string())?.len();
    }
    let base_db = (*engine.db()).clone();
    let policy = Policy::Fixed(rv.selection.strategy.clone());

    struct Point {
        shards: usize,
        partition_ns: u64,
        register_ns: u64,
        serve_wall_ns: u64,
        answers_per_s: f64,
        alloc_events: u64,
        allocs_per_answer: f64,
    }
    let mut curve: Vec<Point> = Vec::new();
    println!(
        "bench `{}` [profile shard]: {} requests, {} answers (unsharded oracle)",
        rv.name,
        bounds.len(),
        expected
    );
    for shards in [1usize, 2, 4, 8] {
        let spec = cqc_engine::spec_for_view(&rv.view, &base_db);
        let t0 = Instant::now();
        let sharded = ShardedEngine::new(
            base_db.clone(),
            spec,
            ShardedEngineConfig {
                shards,
                ..ShardedEngineConfig::default()
            },
        )
        .map_err(|e| e.to_string())?;
        let partition_ns = t0.elapsed().as_nanos() as u64;
        let t0 = Instant::now();
        sharded
            .register(&rv.name, rv.view.clone(), policy.clone())
            .map_err(|e| e.to_string())?;
        let register_ns = t0.elapsed().as_nanos() as u64;
        // Best of three measured passes: on an oversubscribed host (more
        // shards than cores) a single pass is at the mercy of the
        // scheduler; the fastest pass is the one that reflects the serve
        // loop rather than preemption noise. Allocation events are summed
        // — a single allocation in any pass breaks the discipline.
        let mut scratch = ShardedBlocks::new();
        let mut m = sharded
            .measure_steady_state(&rv.name, bounds, &mut scratch)
            .map_err(|e| e.to_string())?;
        for _ in 0..2 {
            let again = sharded
                .measure_steady_state(&rv.name, bounds, &mut scratch)
                .map_err(|e| e.to_string())?;
            m.alloc_events += again.alloc_events;
            m.wall_ns = m.wall_ns.min(again.wall_ns);
        }
        if m.answers != expected {
            return Err(format!(
                "shard profile self-check failed at {shards} shards: \
                 {} answers, unsharded produced {expected}",
                m.answers
            ));
        }
        let answers_per_s = m.answers as f64 / (m.wall_ns.max(1) as f64 / 1e9);
        let allocs_per_answer = m.alloc_events as f64 / m.answers.max(1) as f64;
        println!(
            "  {shards} shard(s): register {} (partition {}), serve {} \
             ({answers_per_s:.0} answers/s), {} allocs ({allocs_per_answer:.4} per answer)",
            fmt_ns(register_ns),
            fmt_ns(partition_ns),
            fmt_ns(m.wall_ns),
            m.alloc_events
        );
        curve.push(Point {
            shards,
            partition_ns,
            register_ns,
            serve_wall_ns: m.wall_ns,
            answers_per_s,
            alloc_events: m.alloc_events,
            allocs_per_answer,
        });
    }
    let one = &curve[0];
    let four = curve.iter().find(|p| p.shards == 4).expect("4 in curve");
    let register_speedup = one.register_ns as f64 / four.register_ns.max(1) as f64;
    let serve_speedup = four.answers_per_s / one.answers_per_s.max(1e-9);
    // The floor — 4-shard answers/s must not fall below 1 shard — is a
    // statement about parallel serving, so it is only enforced where
    // parallelism exists. On a single-core host four shards time-slice one
    // core and the comparison is pure scheduler noise; the raw speedups
    // and the core count are still reported for the record.
    let host_cores = std::thread::available_parallelism().map_or(1, usize::from);
    let floor_enforced = host_cores >= 2;
    let floor_ok = !floor_enforced || four.answers_per_s >= one.answers_per_s;
    println!(
        "  4-shard vs 1-shard: register {register_speedup:.2}x, serve {serve_speedup:.2}x \
         (floor {}, {host_cores} host core(s))",
        if !floor_enforced {
            "not enforced on a single core"
        } else if floor_ok {
            "ok"
        } else {
            "REGRESSED"
        }
    );
    if !floor_ok {
        eprintln!(
            "warning: 4-shard serving ({:.0} answers/s) fell below the 1-shard \
             number ({:.0} answers/s)",
            four.answers_per_s, one.answers_per_s
        );
    }
    if let Some(path) = json_path {
        let points: Vec<String> = curve
            .iter()
            .map(|p| {
                format!(
                    "{{\"shards\": {}, \"partition_ns\": {}, \"register_ns\": {}, \
                     \"serve_wall_ns\": {}, \"answers_per_s\": {:.1}, \
                     \"alloc_events\": {}, \"allocs_per_answer\": {:.4}}}",
                    p.shards,
                    p.partition_ns,
                    p.register_ns,
                    p.serve_wall_ns,
                    p.answers_per_s,
                    p.alloc_events,
                    p.allocs_per_answer
                )
            })
            .collect();
        let fields = [
            format!("\"view\": {}", json_string(&rv.name)),
            "\"profile\": \"shard\"".to_string(),
            format!("\"requests\": {}", bounds.len()),
            format!("\"answers\": {expected}"),
            format!("\"curve\": [\n    {}\n  ]", points.join(",\n    ")),
            format!("\"register_speedup_4s_vs_1s\": {register_speedup:.3}"),
            format!("\"serve_speedup_4s_vs_1s\": {serve_speedup:.3}"),
            format!("\"host_cores\": {host_cores}"),
            format!("\"floor_enforced\": {floor_enforced}"),
            format!("\"floor_4s_vs_1s_ok\": {floor_ok}"),
        ];
        write_json_summary(path, &fields)?;
    }
    Ok(())
}

/// The build profile: where does a register go, and what does plan-once
/// sharded registration save?
///
/// 1. **Phase breakdown** — one fresh single-threaded [`Engine`] register
///    with the view's registered strategy, bracketed by the
///    [`cqc_common::metrics`] build-phase timers: permutation-sort time,
///    index gather/emit time, heavy-dictionary time, and LP/width-search
///    time (the §4.3 preprocessing quantities, measured instead of
///    hand-waved).
/// 2. **Headline register** — best-of-3 one-shard
///    [`cqc_engine::ShardedEngine`] registers with the same fixed
///    strategy, comparable number-for-number with `BENCH_shard.json`'s
///    `register_ns`; `--baseline-register-ns` (a number measured by an
///    earlier commit on the same host) turns it into a speedup.
/// 3. **Shared-plan vs plan-per-shard curve** — at 1/2/4/8 shards, the
///    auto-policy register through the plan-once path
///    ([`cqc_engine::ShardedEngine::register`], selection solved exactly
///    once) versus the per-shard path
///    ([`cqc_engine::ShardedEngine::register_planning_per_shard`], S
///    independent selections). CI gates shared ≤ per-shard across the
///    curve.
fn bench_build(
    engine: &Engine,
    rv: &cqc_engine::RegisteredView,
    json_path: Option<&str>,
    baseline_register_ns: Option<u64>,
) -> Result<(), String> {
    use cqc_common::metrics;
    use cqc_engine::{ShardedEngine, ShardedEngineConfig};

    let base_db = (*engine.db()).clone();
    let fixed = Policy::Fixed(rv.selection.strategy.clone());

    // 1. Phase breakdown on this thread (the timers are thread-local).
    let before = metrics::build_phases();
    let t0 = Instant::now();
    let fresh = Engine::new(base_db.clone());
    fresh
        .register(&rv.name, rv.view.clone(), fixed.clone())
        .map_err(|e| e.to_string())?;
    let single_register_ns = t0.elapsed().as_nanos() as u64;
    let phases = metrics::build_phases().delta_since(&before);

    // 2. Headline one-shard sharded register (the BENCH_shard methodology).
    let sharded_config = |shards: usize| ShardedEngineConfig {
        shards,
        ..ShardedEngineConfig::default()
    };
    let one_shard_register_ns = best_of_3_ns(|| {
        let spec = cqc_engine::spec_for_view(&rv.view, &base_db);
        let sharded = ShardedEngine::new(base_db.clone(), spec, sharded_config(1))
            .map_err(|e| e.to_string())?;
        let t0 = Instant::now();
        sharded
            .register(&rv.name, rv.view.clone(), fixed.clone())
            .map_err(|e| e.to_string())?;
        Ok(t0.elapsed().as_nanos() as u64)
    })?;

    println!(
        "bench `{}` [profile build]: single-engine register {} \
         (sort {}, index {}, dict {}, lp {}, other {})",
        rv.name,
        fmt_ns(single_register_ns),
        fmt_ns(phases.sort_ns),
        fmt_ns(phases.index_ns),
        fmt_ns(phases.dict_ns),
        fmt_ns(phases.lp_ns),
        fmt_ns(single_register_ns.saturating_sub(phases.total_ns())),
    );
    println!(
        "  1-shard sharded register (best of 3): {}",
        fmt_ns(one_shard_register_ns)
    );
    let speedup =
        baseline_register_ns.map(|base| base as f64 / one_shard_register_ns.max(1) as f64);
    if let (Some(base), Some(s)) = (baseline_register_ns, speedup) {
        println!("  vs baseline register {}: {s:.2}x faster", fmt_ns(base));
    }

    // 3. Shared-plan vs plan-per-shard auto-policy register curve.
    struct Point {
        shards: usize,
        shared_register_ns: u64,
        per_shard_register_ns: u64,
    }
    let auto = Policy::default();
    let mut curve: Vec<Point> = Vec::new();
    let mut shared_solves_4s = 0u64;
    let mut per_shard_solves_4s = 0u64;
    for shards in [1usize, 2, 4, 8] {
        // One register; alongside the wall time, the selection-solve delta
        // proves the plan-once property deterministically (1 solve for
        // shared-plan, S for per-shard) — the check wall clocks can't
        // flake on.
        let one_register = |per_shard: bool| -> Result<(u64, u64), String> {
            let solves_before = cqc_engine::policy::selection_solves();
            let spec = cqc_engine::spec_for_view(&rv.view, &base_db);
            let sharded = ShardedEngine::new(base_db.clone(), spec, sharded_config(shards))
                .map_err(|e| e.to_string())?;
            let t0 = Instant::now();
            if per_shard {
                sharded
                    .register_planning_per_shard(&rv.name, rv.view.clone(), auto.clone())
                    .map_err(|e| e.to_string())?;
            } else {
                sharded
                    .register(&rv.name, rv.view.clone(), auto.clone())
                    .map_err(|e| e.to_string())?;
            }
            let ns = t0.elapsed().as_nanos() as u64;
            Ok((ns, cqc_engine::policy::selection_solves() - solves_before))
        };
        // Interleave the two sides (3 rounds, best of each) so scheduler
        // drift on a loaded host hits both measurements alike.
        let mut shared_register_ns = u64::MAX;
        let mut per_shard_register_ns = u64::MAX;
        let mut shared_solves = 0u64;
        let mut per_shard_solves = 0u64;
        for _ in 0..3 {
            let (ns, solves) = one_register(false)?;
            shared_register_ns = shared_register_ns.min(ns);
            shared_solves = solves;
            let (ns, solves) = one_register(true)?;
            per_shard_register_ns = per_shard_register_ns.min(ns);
            per_shard_solves = solves;
        }
        if shards == 4 {
            shared_solves_4s = shared_solves;
            per_shard_solves_4s = per_shard_solves;
        }
        println!(
            "  {shards} shard(s), auto policy: shared-plan register {} ({shared_solves} \
             selection solve/register) vs plan-per-shard {} ({per_shard_solves} solves) \
             ({:.2}x)",
            fmt_ns(shared_register_ns),
            fmt_ns(per_shard_register_ns),
            per_shard_register_ns as f64 / shared_register_ns.max(1) as f64
        );
        curve.push(Point {
            shards,
            shared_register_ns,
            per_shard_register_ns,
        });
    }
    // Shared-plan must not cost more than plan-per-shard: structurally it
    // does strictly less work (one selection instead of S per register).
    // The comparison sums the whole curve (8 best-of-3 points) and allows
    // 10% for scheduler noise — a single-point wall-clock inequality flakes
    // on loaded hosts where selection is a small fraction of the build; the
    // noise-immune form of the property is `plan_once_ok`.
    let shared_sum: u64 = curve.iter().map(|p| p.shared_register_ns).sum();
    let per_shard_sum: u64 = curve.iter().map(|p| p.per_shard_register_ns).sum();
    let shared_ok = shared_sum as f64 <= per_shard_sum as f64 * 1.10;
    let plan_once_ok = shared_solves_4s == 1 && per_shard_solves_4s == 4;
    println!(
        "  curve total: shared-plan {} ≤ plan-per-shard {}: {}; selection solved once: {}",
        fmt_ns(shared_sum),
        fmt_ns(per_shard_sum),
        if shared_ok { "ok" } else { "REGRESSED" },
        if plan_once_ok { "ok" } else { "VIOLATED" }
    );
    if !shared_ok {
        eprintln!(
            "warning: shared-plan registers ({}) slower than plan-per-shard ({}) across the curve",
            fmt_ns(shared_sum),
            fmt_ns(per_shard_sum)
        );
    }

    if let Some(path) = json_path {
        let points: Vec<String> = curve
            .iter()
            .map(|p| {
                format!(
                    "{{\"shards\": {}, \"shared_register_ns\": {}, \
                     \"per_shard_register_ns\": {}}}",
                    p.shards, p.shared_register_ns, p.per_shard_register_ns
                )
            })
            .collect();
        let mut fields = vec![
            format!("\"view\": {}", json_string(&rv.name)),
            "\"profile\": \"build\"".to_string(),
            format!("\"strategy\": {}", json_string(&rv.selection.tag)),
            format!("\"db_tuples\": {}", base_db.size()),
            format!("\"register_ns\": {single_register_ns}"),
            format!("\"sort_ns\": {}", phases.sort_ns),
            format!("\"index_ns\": {}", phases.index_ns),
            format!("\"dict_ns\": {}", phases.dict_ns),
            format!("\"lp_ns\": {}", phases.lp_ns),
            format!("\"one_shard_register_ns\": {one_shard_register_ns}"),
        ];
        if let (Some(base), Some(s)) = (baseline_register_ns, speedup) {
            fields.push(format!("\"baseline_register_ns\": {base}"));
            fields.push(format!("\"register_speedup_vs_baseline\": {s:.3}"));
        }
        fields.push(format!(
            "\"plan_curve\": [\n    {}\n  ]",
            points.join(",\n    ")
        ));
        fields.push(format!("\"shared_register_ns_total\": {shared_sum}"));
        fields.push(format!("\"per_shard_register_ns_total\": {per_shard_sum}"));
        fields.push(format!(
            "\"shared_plan_speedup_total\": {:.3}",
            per_shard_sum as f64 / shared_sum.max(1) as f64
        ));
        fields.push(format!(
            "\"selection_solves_shared_4s\": {shared_solves_4s}"
        ));
        fields.push(format!(
            "\"selection_solves_per_shard_4s\": {per_shard_solves_4s}"
        ));
        fields.push(format!("\"plan_once_ok\": {plan_once_ok}"));
        fields.push(format!("\"shared_plan_le_per_shard_ok\": {shared_ok}"));
        write_json_summary(path, &fields)?;
    }
    Ok(())
}

/// The net profile: how much does the wire cost, and is the remote stream
/// *exactly* the local stream?
///
/// Stands up four shard servers on 127.0.0.1 — each a fresh [`Engine`]
/// over one slice of the current database, split under the partition spec
/// derived for the benched view — fronts them with a [`Router`], and
/// serves the identical request stream twice: through an in-process
/// 4-shard [`cqc_engine::ShardedEngine`] under the same spec, and through
/// the router over TCP. Both paths are warmed, then measured, and the
/// merged streams are compared tuple-for-tuple (the order contract is
/// exact lexicographic on both sides, so equality is `==`, not set
/// equality). One mixed insert/delete delta is then applied through both
/// update paths and the full stream is re-compared, so the gate also
/// covers the split-delta/epoch machinery in both directions. Wire bytes come from the router's
/// per-connection counters around the measured pass.
fn bench_net(
    engine: &Engine,
    rv: &cqc_engine::RegisteredView,
    bounds: &[Vec<u64>],
    json_path: Option<&str>,
) -> Result<(), String> {
    use cqc_engine::{ShardedBlocks, ShardedEngine, ShardedEngineConfig};
    const SHARDS: usize = 4;

    let base_db = (*engine.db()).clone();
    let query_text = rv.view.query().to_string();
    let pattern = rv.view.pattern();
    let spec = cqc_engine::spec_for_view(&rv.view, &base_db);

    // In-process baseline: a 4-shard engine under the same spec. Both
    // sides register with the `auto` policy so neither gets a hand-tuned
    // advantage.
    let sharded = ShardedEngine::new(
        base_db.clone(),
        spec.clone(),
        ShardedEngineConfig {
            shards: SHARDS,
            ..ShardedEngineConfig::default()
        },
    )
    .map_err(|e| e.to_string())?;
    sharded
        .register(&rv.name, rv.view.clone(), parse_strategy("auto")?)
        .map_err(|e| e.to_string())?;

    // The loopback fleet: one server per database slice, OS-chosen ports.
    let part = Partitioning::new(spec.clone(), SHARDS).map_err(|e| e.to_string())?;
    let slices = part.split_database(&base_db).map_err(|e| e.to_string())?;
    let mut servers = Vec::with_capacity(SHARDS);
    let mut addrs = Vec::with_capacity(SHARDS);
    for slice in slices {
        let handle = NetServer::spawn(
            Arc::new(Engine::new(slice)),
            "127.0.0.1:0",
            NetServerConfig::default(),
        )
        .map_err(|e| e.to_string())?;
        addrs.push(handle.addr().to_string());
        servers.push(handle);
    }
    let router =
        Router::connect(&addrs, spec, ClientConfig::default()).map_err(|e| e.to_string())?;
    router
        .register_view(&rv.name, &query_text, &pattern, "auto")
        .map_err(|e| e.to_string())?;

    // One measured pass per side; `collect` toggles the tuple capture so
    // the warm pass costs no Vec growth inside the measurement.
    let mut scratch = ShardedBlocks::new();
    let mut local_pass = |collect: bool| -> Result<(Vec<Vec<u64>>, usize, u64), String> {
        let mut tuples: Vec<Vec<u64>> = vec![Vec::new(); bounds.len()];
        let t0 = Instant::now();
        let answers = sharded
            .serve_stream_with(&rv.name, bounds, &mut scratch, |i, block| {
                if collect {
                    tuples[i].extend_from_slice(block.values());
                }
            })
            .map_err(|e| e.to_string())?;
        Ok((tuples, answers, t0.elapsed().as_nanos() as u64))
    };
    let remote_pass = |collect: bool| -> Result<(Vec<Vec<u64>>, usize, u64), String> {
        let mut tuples: Vec<Vec<u64>> = vec![Vec::new(); bounds.len()];
        let mut block = AnswerBlock::new();
        let mut answers = 0usize;
        let t0 = Instant::now();
        for (i, bound) in bounds.iter().enumerate() {
            block.reset();
            answers += router
                .serve_merged(&rv.name, bound, &mut block)
                .map_err(|e| e.to_string())?;
            if collect {
                tuples[i].extend_from_slice(block.values());
            }
        }
        Ok((tuples, answers, t0.elapsed().as_nanos() as u64))
    };

    local_pass(false)?; // warm: builds per-shard scratch high-water marks
    let (local_tuples, local_answers, local_ns) = local_pass(true)?;
    remote_pass(false)?; // warm: server-side scratch + connection buffers
    let (rx0, tx0) = router.wire_bytes();
    let (remote_tuples, remote_answers, remote_ns) = remote_pass(true)?;
    let (rx1, tx1) = router.wire_bytes();
    let stream_equal = local_tuples == remote_tuples && local_answers == remote_answers;

    // One delta through both update paths, then the full stream again:
    // catches split-delta or maintenance divergence the static pass can't.
    let mut view_relations: Vec<&str> = rv
        .view
        .query()
        .atoms
        .iter()
        .map(|a| a.relation.as_str())
        .collect();
    view_relations.sort_unstable();
    view_relations.dedup();
    let mut rng = cqc_workload::rng(13);
    let delta = mixed_delta(&mut rng, &base_db, &view_relations, 3, 2);
    sharded.apply_update(&delta).map_err(|e| e.to_string())?;
    router.apply_update(&delta).map_err(|e| e.to_string())?;
    let (local_after, local_answers_after, _) = local_pass(true)?;
    let (remote_after, remote_answers_after, _) = remote_pass(true)?;
    let update_equal = local_after == remote_after && local_answers_after == remote_answers_after;
    let epochs_equal = sharded.version() == router.version();

    let per_s = |answers: usize, ns: u64| answers as f64 / (ns.max(1) as f64 / 1e9);
    let local_rate = per_s(local_answers, local_ns);
    let remote_rate = per_s(remote_answers, remote_ns);
    let wire_in = rx1 - rx0;
    let wire_out = tx1 - tx0;
    let bytes_per_answer = wire_in as f64 / remote_answers.max(1) as f64;
    println!(
        "bench `{}` [profile net]: {} requests, {} answers, {SHARDS} loopback shard(s), \
         protocol v{}",
        rv.name,
        bounds.len(),
        local_answers,
        cqc_common::frame::PROTOCOL_VERSION
    );
    println!(
        "  in-process sharded: {local_rate:.0} answers/s ({})",
        fmt_ns(local_ns)
    );
    println!(
        "  loopback fleet:     {remote_rate:.0} answers/s ({}), {} down / {} up \
         ({bytes_per_answer:.1} bytes/answer)",
        fmt_ns(remote_ns),
        fmt_bytes(wire_in as usize),
        fmt_bytes(wire_out as usize)
    );
    println!(
        "  remote/local: {:.2}x; streams identical: {}; after update: {}; epochs aligned: {}",
        remote_rate / local_rate.max(1e-9),
        stream_equal,
        update_equal,
        epochs_equal
    );

    let all_equal = stream_equal && update_equal;
    if let Some(path) = json_path {
        let fields = [
            format!("\"view\": {}", json_string(&rv.name)),
            "\"profile\": \"net\"".to_string(),
            format!(
                "\"protocol_version\": {}",
                cqc_common::frame::PROTOCOL_VERSION
            ),
            format!("\"shards\": {SHARDS}"),
            format!("\"requests\": {}", bounds.len()),
            format!("\"answers\": {local_answers}"),
            format!("\"local_wall_ns\": {local_ns}"),
            format!("\"local_answers_per_s\": {local_rate:.1}"),
            format!("\"net_wall_ns\": {remote_ns}"),
            format!("\"net_answers_per_s\": {remote_rate:.1}"),
            format!(
                "\"net_vs_local\": {:.4}",
                remote_rate / local_rate.max(1e-9)
            ),
            format!("\"wire_bytes_down\": {wire_in}"),
            format!("\"wire_bytes_up\": {wire_out}"),
            format!("\"bytes_per_answer\": {bytes_per_answer:.2}"),
            format!("\"epochs_equal\": {epochs_equal}"),
            format!("\"stream_equal\": {all_equal}"),
        ];
        write_json_summary(path, &fields)?;
    }
    for server in &mut servers {
        server.shutdown();
    }
    if !all_equal {
        return Err(format!(
            "net profile self-check failed: remote stream diverged from the in-process \
             stream (pre-update equal: {stream_equal}, post-update equal: {update_equal})"
        ));
    }
    Ok(())
}

/// One chaos phase's ledger: how many requests ran, how many came back
/// exact (tuple-for-tuple equal to the oracle), and their latencies.
#[derive(Debug, Default)]
struct ChaosPhase {
    attempted: u64,
    exact: u64,
    lat_ns: Vec<u64>,
    last_miss: Option<String>,
}

impl ChaosPhase {
    fn absorb(&mut self, other: ChaosPhase) {
        self.attempted += other.attempted;
        self.exact += other.exact;
        self.lat_ns.extend(other.lat_ns);
        if other.last_miss.is_some() {
            self.last_miss = other.last_miss;
        }
    }
}

/// Serves `n` requests (cycling through `bounds` from `*cursor`) through
/// the router and compares every merged stream tuple-for-tuple against
/// the in-process oracle. Router failures and divergent streams count as
/// availability misses, not hard errors — the chaos gate judges the
/// totals.
fn chaos_exact_phase(
    router: &Router,
    oracle: &dyn BlockService,
    view: &str,
    bounds: &[Vec<u64>],
    cursor: &mut usize,
    n: usize,
) -> Result<ChaosPhase, String> {
    let mut phase = ChaosPhase::default();
    let mut want = AnswerBlock::new();
    let mut got = AnswerBlock::new();
    for _ in 0..n {
        let bound = &bounds[*cursor % bounds.len()];
        *cursor += 1;
        want.reset();
        oracle
            .serve_into(view, bound, &mut want)
            .map_err(|e| format!("chaos oracle serve: {e}"))?;
        got.reset();
        let t0 = Instant::now();
        let outcome = router.serve_merged(view, bound, &mut got);
        phase.lat_ns.push(t0.elapsed().as_nanos() as u64);
        phase.attempted += 1;
        match outcome {
            Ok(_) if got.values() == want.values() => phase.exact += 1,
            Ok(n) => {
                phase.last_miss = Some(format!(
                    "stream diverged from the oracle ({n} answers served, {} expected)",
                    want.len()
                ));
            }
            Err(e) => phase.last_miss = Some(format!("serve failed: {e}")),
        }
    }
    Ok(phase)
}

/// Respawns a killed shard server on its original address (bounded
/// retries — the OS may need a moment to release the port).
fn respawn(
    service: Arc<dyn BlockService>,
    addr: &str,
    config: NetServerConfig,
) -> Result<ServerHandle, String> {
    let mut last = String::new();
    for _ in 0..40 {
        match NetServer::spawn(Arc::clone(&service), addr, config) {
            Ok(handle) => return Ok(handle),
            Err(e) => {
                last = e.to_string();
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
    Err(format!("could not respawn shard server on {addr}: {last}"))
}

/// `lat[q]`-th percentile of a latency sample (ns); 0 when empty.
fn percentile_ns(lat: &mut [u64], q: u64) -> u64 {
    if lat.is_empty() {
        return 0;
    }
    lat.sort_unstable();
    lat[((lat.len() as u64 - 1) * q / 100) as usize]
}

/// The chaos profile: a 2-shard × 2-replica loopback fleet driven through
/// a scripted fault schedule, with every answer stream checked against
/// in-process oracles.
///
/// The schedule, in order:
///
/// 1. **baseline** — no faults; every serve must be exact.
/// 2. **soft faults** — each fault type in turn on replica 0 of *every*
///    shard (stall past the socket timeout, typed refusal, an epoch lie,
///    death mid-stream after a flushed chunk): the failover machinery
///    must keep every serve exact via replica 1, exercising hedged
///    requests, breaker trips, stale skips, and verified prefix resumes.
/// 3. **hard kill** — replica 0 of every shard is really shut down:
///    serves stay exact, and the dead replicas' breakers open so later
///    requests stop paying for dead connects.
/// 4. **update under failure** — one mixed insert/delete delta goes
///    through the router while replica 0 is down: it lands on the
///    surviving replicas (preconditioned on the epoch vector), and the
///    oracles apply the same delta.
/// 5. **whole-group outage** — shard 1's last replica is killed too:
///    strict serves fail with a *typed* error, and
///    [`ServeMode::DegradedOk`] serves return exactly shard 0's slice of
///    the answers with a `1/2` coverage bitmap and a typed
///    [`cqc_common::frame::code::DEGRADED`] indication.
/// 6. **revival** — dead replicas are re-synced (the delta they missed is
///    applied directly — the operator-resync path), their servers respawn
///    on the original ports, `health_check` re-admits them, their
///    breakers close through the half-open probe, and serves are exact
///    again on the updated database.
///
/// Availability over the exact phases (1–4, 6) must be 100% — each shard
/// always kept one live replica. No request may ever exceed the retry
/// policy's deadline by more than scheduling noise.
fn bench_chaos(
    rv: &cqc_engine::RegisteredView,
    engine: &Engine,
    bounds: &[Vec<u64>],
    json_path: Option<&str>,
) -> Result<(), String> {
    const SHARDS: usize = 2;
    const REPLICAS: usize = 2;

    let base_db = (*engine.db()).clone();
    let query_text = rv.view.query().to_string();
    let pattern = rv.view.pattern();
    let spec = cqc_engine::spec_for_view(&rv.view, &base_db);
    let part = Partitioning::new(spec.clone(), SHARDS).map_err(|e| e.to_string())?;
    let slices = part.split_database(&base_db).map_err(|e| e.to_string())?;

    // In-process oracles: the full database (exact phases) and shard 0's
    // slice alone (the degraded phase's expected answer stream).
    let oracle = Engine::new(base_db.clone());
    (&oracle as &dyn BlockService)
        .register_view(&rv.name, &query_text, &pattern, "auto")
        .map_err(|e| e.to_string())?;
    let shard0_oracle = Engine::new(slices[0].clone());
    (&shard0_oracle as &dyn BlockService)
        .register_view(&rv.name, &query_text, &pattern, "auto")
        .map_err(|e| e.to_string())?;

    // The fleet: per shard, R chaos-wrapped engines over identical copies
    // of that shard's slice. Small chunks so a mid-stream death leaves a
    // flushed prefix on the wire (the resume path needs one).
    let server_config = NetServerConfig {
        chunk_tuples: 8,
        ..NetServerConfig::default()
    };
    let mut services: Vec<Vec<Arc<ChaosService>>> = Vec::with_capacity(SHARDS);
    let mut servers: Vec<Vec<Option<ServerHandle>>> = Vec::with_capacity(SHARDS);
    let mut group_addrs: Vec<Vec<String>> = Vec::with_capacity(SHARDS);
    for slice in &slices {
        let mut row_services = Vec::with_capacity(REPLICAS);
        let mut row_servers = Vec::with_capacity(REPLICAS);
        let mut row_addrs = Vec::with_capacity(REPLICAS);
        for _ in 0..REPLICAS {
            let service = Arc::new(ChaosService::new(Arc::new(Engine::new(slice.clone()))));
            let handle = NetServer::spawn(
                Arc::clone(&service) as Arc<dyn BlockService>,
                "127.0.0.1:0",
                server_config,
            )
            .map_err(|e| e.to_string())?;
            row_addrs.push(handle.addr().to_string());
            row_services.push(service);
            row_servers.push(Some(handle));
        }
        services.push(row_services);
        servers.push(row_servers);
        group_addrs.push(row_addrs);
    }

    // Fail-fast timings so the schedule runs in seconds: a stalled
    // replica burns one 300 ms socket timeout, not a 30 s default.
    let client_config = ClientConfig {
        connect_attempts: 2,
        backoff_base: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(10),
        io_timeout: Some(Duration::from_millis(300)),
        refused_retries: 0,
        jitter_seed: 42,
    };
    let breaker_config = BreakerConfig {
        consecutive_failures: 3,
        window: 8,
        error_rate_pct: 50,
        cooldown: Duration::from_millis(300),
        half_open_successes: 1,
    };
    let policy = RetryPolicy {
        attempts: 4,
        backoff_base: Duration::from_millis(2),
        backoff_cap: Duration::from_millis(20),
        request_deadline: Some(Duration::from_secs(2)),
        hedge_after: Some(Duration::from_millis(150)),
        retry_budget: RetryBudgetConfig {
            earn_pct: 20,
            burst: 32,
        },
    };
    let router =
        Router::connect_replicated(&group_addrs, spec, client_config, breaker_config, policy)
            .map_err(|e| e.to_string())?;
    router
        .register_view(&rv.name, &query_text, &pattern, "auto")
        .map_err(|e| e.to_string())?;

    let mut cursor = 0usize;
    let mut exact_total = ChaosPhase::default();
    let mut failover_lat: Vec<u64> = Vec::new();
    let mut all_lat: Vec<u64> = Vec::new();

    // Phase 1: baseline — the healthy fleet serves exactly.
    let baseline = chaos_exact_phase(&router, &oracle, &rv.name, bounds, &mut cursor, 10)?;
    all_lat.extend(&baseline.lat_ns);
    exact_total.absorb(baseline);

    // Phase 2: soft faults on replica 0 of every shard, one type at a
    // time; a cooldown-length pause between types lets the breakers
    // half-open so the next fault type is actually probed.
    let soft_faults = [
        Fault::Stall(Duration::from_millis(600)),
        Fault::Refuse,
        Fault::WrongEpoch(3),
        Fault::DieMidStream(10),
    ];
    for fault in soft_faults {
        for row in &services {
            row[0].set_fault(fault);
        }
        let phase = chaos_exact_phase(&router, &oracle, &rv.name, bounds, &mut cursor, 5)?;
        failover_lat.extend(&phase.lat_ns);
        all_lat.extend(&phase.lat_ns);
        exact_total.absorb(phase);
        for row in &services {
            row[0].set_fault(Fault::None);
        }
        std::thread::sleep(breaker_config.cooldown + Duration::from_millis(50));
    }

    // Phase 2b: a slow-but-alive replica. Replica 0 of every shard
    // serves correctly but 250 ms late — past hedge_after (150 ms) yet
    // inside the 300 ms socket timeout, so nothing errors and breakers
    // never open. Only budget-funded hedges keep the fleet's tail under
    // the slow replica's latency.
    let before_slow = router.fleet_stats();
    for row in &services {
        row[0].set_fault(Fault::Slowdown(25));
    }
    let slow = chaos_exact_phase(&router, &oracle, &rv.name, bounds, &mut cursor, 8)?;
    for row in &services {
        row[0].set_fault(Fault::None);
    }
    let after_slow = router.fleet_stats();
    let mut slow_lat = slow.lat_ns.clone();
    all_lat.extend(&slow.lat_ns);
    exact_total.absorb(slow);
    let slow_p99_ns = percentile_ns(&mut slow_lat, 99);
    let slow_hedges = after_slow.groups.hedges - before_slow.groups.hedges;
    let slow_budget_spent = after_slow.groups.budget_spent - before_slow.groups.budget_spent;
    // Bounded tail: hedges fire at 150 ms and the healthy sibling
    // answers in microseconds, so p99 must land well under the 250 ms
    // the slow replica would have cost — and every hedge was a budget
    // token, so spends must cover the hedge count.
    let slow_replica_ok =
        slow_p99_ns < 200_000_000 && slow_hedges > 0 && slow_budget_spent >= slow_hedges;
    std::thread::sleep(breaker_config.cooldown + Duration::from_millis(50));

    // Phase 3: really kill replica 0 of every shard.
    for row in &mut servers {
        if let Some(mut handle) = row[0].take() {
            handle.shutdown();
        }
    }
    let killed = chaos_exact_phase(&router, &oracle, &rv.name, bounds, &mut cursor, 10)?;
    failover_lat.extend(&killed.lat_ns);
    all_lat.extend(&killed.lat_ns);
    exact_total.absorb(killed);

    // Phase 4: one mixed delta through the router while replica 0 is
    // down — it lands on the survivors under the epoch precondition; the
    // dead replicas will need the operator re-sync below.
    let mut view_relations: Vec<&str> = rv
        .view
        .query()
        .atoms
        .iter()
        .map(|a| a.relation.as_str())
        .collect();
    view_relations.sort_unstable();
    view_relations.dedup();
    let mut rng = cqc_workload::rng(23);
    let delta = mixed_delta(&mut rng, &base_db, &view_relations, 3, 2);
    let sub = part.split_delta(&delta).map_err(|e| e.to_string())?;
    router.apply_update(&delta).map_err(|e| e.to_string())?;
    (&oracle as &dyn BlockService)
        .apply_update(&delta)
        .map_err(|e| e.to_string())?;
    if !sub[0].is_empty() {
        (&shard0_oracle as &dyn BlockService)
            .apply_update(&sub[0])
            .map_err(|e| e.to_string())?;
    }
    let updated = chaos_exact_phase(&router, &oracle, &rv.name, bounds, &mut cursor, 6)?;
    all_lat.extend(&updated.lat_ns);
    exact_total.absorb(updated);

    // Phase 5: whole-group outage — shard 1 loses its last replica.
    if let Some(mut handle) = servers[1][1].take() {
        handle.shutdown();
    }
    let mut strict_block = AnswerBlock::new();
    let strict_bound = &bounds[cursor % bounds.len()];
    let t0 = Instant::now();
    let strict_outcome = router.serve_merged(&rv.name, strict_bound, &mut strict_block);
    all_lat.push(t0.elapsed().as_nanos() as u64);
    let strict_typed = match strict_outcome {
        Err(cqc_common::CqcError::Protocol { .. }) => true,
        Err(_) | Ok(_) => false,
    };
    let mut degraded_attempted = 0u64;
    let mut degraded_exact = 0u64;
    let mut want = AnswerBlock::new();
    let mut got = AnswerBlock::new();
    for _ in 0..5 {
        let bound = &bounds[cursor % bounds.len()];
        cursor += 1;
        want.reset();
        (&shard0_oracle as &dyn BlockService)
            .serve_into(&rv.name, bound, &mut want)
            .map_err(|e| e.to_string())?;
        got.reset();
        let t0 = Instant::now();
        let report = router
            .serve_with_mode(&rv.name, bound, &mut got, ServeMode::DegradedOk)
            .map_err(|e| e.to_string())?;
        all_lat.push(t0.elapsed().as_nanos() as u64);
        degraded_attempted += 1;
        let degraded_error_typed = report.degraded_error().is_some_and(|e| {
            matches!(
                e,
                cqc_common::CqcError::Protocol {
                    code: cqc_common::frame::code::DEGRADED,
                    ..
                }
            )
        });
        if report.is_degraded()
            && report.coverage.missing() == vec![1]
            && degraded_error_typed
            && got.values() == want.values()
        {
            degraded_exact += 1;
        }
    }
    let degraded_ok =
        strict_typed && degraded_attempted > 0 && degraded_exact == degraded_attempted;

    // Phase 6: revival — re-sync the delta the dead replicas missed (the
    // operator path: directly into their engines), respawn on the
    // original ports, re-admit via health_check, serve exactly again.
    let dead = [(0usize, 0usize), (1, 0), (1, 1)];
    for &(s, r) in &dead {
        if !sub[s].is_empty() && (s, r) != (1, 1) {
            // (1,1) was alive for the update; re-applying would fork it.
            services[s][r]
                .apply_update(&sub[s])
                .map_err(|e| e.to_string())?;
        }
        let service = Arc::clone(&services[s][r]) as Arc<dyn BlockService>;
        servers[s][r] = Some(respawn(service, &group_addrs[s][r], server_config)?);
    }
    std::thread::sleep(breaker_config.cooldown + Duration::from_millis(50));
    router.health_check().map_err(|e| e.to_string())?;
    let revived = chaos_exact_phase(&router, &oracle, &rv.name, bounds, &mut cursor, 10)?;
    all_lat.extend(&revived.lat_ns);
    exact_total.absorb(revived);

    // The verdicts.
    let availability_pct = exact_total.exact as f64 * 100.0 / exact_total.attempted.max(1) as f64;
    let availability_ok = exact_total.attempted > 0 && exact_total.exact == exact_total.attempted;
    // Deadline is 2 s; anything past 3 s means a wait escaped the
    // deadline accounting (1 s of grace for scheduling noise).
    let max_request_ns = all_lat.iter().copied().max().unwrap_or(0);
    let no_hung_requests = max_request_ns < 3_000_000_000;
    let fleet = router.fleet_stats();
    let breaker_cycled = fleet.breakers.opened >= 2 && fleet.breakers.closed >= 2;
    let failover_p50 = percentile_ns(&mut failover_lat, 50);
    let failover_p99 = percentile_ns(&mut failover_lat, 99);

    println!(
        "bench `{}` [profile chaos]: {SHARDS} shards x {REPLICAS} replicas, {} exact-phase \
         requests, protocol v{}",
        rv.name,
        exact_total.attempted,
        cqc_common::frame::PROTOCOL_VERSION
    );
    println!(
        "  availability: {availability_pct:.1}% ({} / {} exact){}",
        exact_total.exact,
        exact_total.attempted,
        exact_total
            .last_miss
            .as_deref()
            .map(|m| format!(" — last miss: {m}"))
            .unwrap_or_default()
    );
    println!(
        "  failover latency: p50 {} | p99 {} | max request {}",
        fmt_ns(failover_p50),
        fmt_ns(failover_p99),
        fmt_ns(max_request_ns)
    );
    println!(
        "  fleet: {} failovers, {} stale skips, {} prefix resumes, {} hedges ({} won), \
         {} update failures, retry budget {} spent / {} denied",
        fleet.groups.failovers,
        fleet.groups.stale_skips,
        fleet.groups.prefix_resumes,
        fleet.groups.hedges,
        fleet.groups.hedge_wins,
        fleet.groups.update_failures,
        fleet.groups.budget_spent,
        fleet.groups.budget_denied
    );
    println!(
        "  slow replica: p99 {} with {slow_hedges} hedges ({slow_budget_spent} budget-funded) \
         against a 250 ms slowdown (ok: {slow_replica_ok})",
        fmt_ns(slow_p99_ns)
    );
    println!(
        "  breakers: {} opened, {} half-opened, {} closed (cycled: {breaker_cycled})",
        fleet.breakers.opened, fleet.breakers.half_opened, fleet.breakers.closed
    );
    println!(
        "  degraded: strict outage typed: {strict_typed}; {degraded_exact}/{degraded_attempted} \
         degraded serves matched shard 0's slice with a 1/2 coverage bitmap"
    );

    if let Some(path) = json_path {
        let fields = [
            format!("\"view\": {}", json_string(&rv.name)),
            "\"profile\": \"chaos\"".to_string(),
            format!(
                "\"protocol_version\": {}",
                cqc_common::frame::PROTOCOL_VERSION
            ),
            format!("\"shards\": {SHARDS}"),
            format!("\"replicas\": {REPLICAS}"),
            format!("\"exact_requests\": {}", exact_total.attempted),
            format!("\"exact_served\": {}", exact_total.exact),
            format!("\"availability_pct\": {availability_pct:.2}"),
            format!("\"availability_ok\": {availability_ok}"),
            format!("\"failover_p50_ns\": {failover_p50}"),
            format!("\"failover_p99_ns\": {failover_p99}"),
            format!("\"max_request_ns\": {max_request_ns}"),
            format!("\"no_hung_requests\": {no_hung_requests}"),
            format!("\"failovers\": {}", fleet.groups.failovers),
            format!("\"stale_skips\": {}", fleet.groups.stale_skips),
            format!("\"prefix_resumes\": {}", fleet.groups.prefix_resumes),
            format!("\"hedges\": {}", fleet.groups.hedges),
            format!("\"hedge_wins\": {}", fleet.groups.hedge_wins),
            format!("\"update_failures\": {}", fleet.groups.update_failures),
            format!("\"budget_spent\": {}", fleet.groups.budget_spent),
            format!("\"budget_denied\": {}", fleet.groups.budget_denied),
            format!("\"slow_p99_ns\": {slow_p99_ns}"),
            format!("\"slow_hedges\": {slow_hedges}"),
            format!("\"slow_replica_ok\": {slow_replica_ok}"),
            format!("\"breaker_opened\": {}", fleet.breakers.opened),
            format!("\"breaker_half_opened\": {}", fleet.breakers.half_opened),
            format!("\"breaker_closed\": {}", fleet.breakers.closed),
            format!("\"breaker_cycled\": {breaker_cycled}"),
            format!("\"strict_outage_typed\": {strict_typed}"),
            format!("\"degraded_serves\": {degraded_attempted}"),
            format!("\"degraded_exact\": {degraded_exact}"),
            format!("\"degraded_ok\": {degraded_ok}"),
        ];
        write_json_summary(path, &fields)?;
    }

    for row in &mut servers {
        for slot in row.iter_mut() {
            if let Some(mut handle) = slot.take() {
                handle.shutdown();
            }
        }
    }
    if !availability_ok {
        return Err(format!(
            "chaos profile self-check failed: availability {availability_pct:.1}% \
             (every shard kept a live replica; 100% exact serves were required){}",
            exact_total
                .last_miss
                .map(|m| format!(" — last miss: {m}"))
                .unwrap_or_default()
        ));
    }
    if !degraded_ok {
        return Err(format!(
            "chaos profile self-check failed: degraded mode (strict typed: {strict_typed}, \
             exact degraded serves: {degraded_exact}/{degraded_attempted})"
        ));
    }
    if !no_hung_requests {
        return Err(format!(
            "chaos profile self-check failed: a request ran {} — past the deadline budget",
            fmt_ns(max_request_ns)
        ));
    }
    if !slow_replica_ok {
        return Err(format!(
            "chaos profile self-check failed: slow-replica phase p99 {} with {slow_hedges} \
             hedges ({slow_budget_spent} budget-funded) — hedging under a retry budget must \
             keep the tail below the 250 ms slowdown",
            fmt_ns(slow_p99_ns)
        ));
    }
    Ok(())
}

/// One scheduled arrival in the mixed-workload harness: when it fires
/// relative to the phase start, which bound it asks (Zipf-skewed), and
/// the priority class and deadline budget it carries on the wire.
struct MixArrival {
    offset: Duration,
    bound_idx: usize,
    priority: ServePriority,
    budget: Duration,
}

/// How one open-loop arrival ended (latency in ns). `Refused` and
/// `Expired` are the *typed* shed outcomes the admission controller
/// promises; anything else is `Other` and fails the bench.
#[derive(Clone, Copy)]
enum MixOutcome {
    Accepted(u64),
    Refused(u64),
    Expired(u64),
    Other(u64),
}

/// One phase's per-class ledgers (index: Interactive 0, Batch 1,
/// Internal 2).
#[derive(Default)]
struct MixPhase {
    offered: [u64; 3],
    accepted: [u64; 3],
    refused: [u64; 3],
    expired: [u64; 3],
    other: u64,
    accepted_lat: Vec<u64>,
    interactive_lat: Vec<u64>,
    max_ns: u64,
    elapsed_ns: u64,
}

impl MixPhase {
    fn accepted_total(&self) -> u64 {
        self.accepted.iter().sum()
    }

    fn shed(&self, class: usize) -> u64 {
        self.refused[class] + self.expired[class]
    }
}

fn mix_class(priority: ServePriority) -> usize {
    match priority {
        ServePriority::Interactive => 0,
        ServePriority::Batch => 1,
        ServePriority::Internal => 2,
    }
}

fn mix_client_config(jitter_seed: u64) -> ClientConfig {
    ClientConfig {
        connect_attempts: 3,
        backoff_base: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(10),
        io_timeout: Some(Duration::from_secs(2)),
        refused_retries: 3,
        jitter_seed,
    }
}

/// `lat`'s q-per-mille percentile (ns); 0 when empty.
fn permille_ns(lat: &mut [u64], q: u64) -> u64 {
    if lat.is_empty() {
        return 0;
    }
    lat.sort_unstable();
    lat[(lat.len() - 1) * q as usize / 1000]
}

/// Replays `arrivals` open-loop against `addr`: `workers` threads pull
/// the next arrival from a shared cursor, sleep until its offset, and
/// fire it with its class and deadline budget on the wire, all sharing
/// one retry budget. Typed sheds return in microseconds, so the pool
/// stays on schedule — the offered load really is open-loop.
fn mix_phase(
    addr: &str,
    view: &str,
    bounds: &[Vec<u64>],
    arrivals: &[MixArrival],
    workers: usize,
    budget: &Arc<RetryBudget>,
) -> Result<MixPhase, String> {
    let next = AtomicUsize::new(0);
    // Workers pre-connect (a health probe) before the clock starts, so
    // connection setup never skews the schedule.
    let start = Instant::now() + Duration::from_millis(60);
    let mut phase = MixPhase::default();
    std::thread::scope(|s| -> Result<(), String> {
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let budget = Arc::clone(budget);
            let next = &next;
            handles.push(
                s.spawn(move || -> Result<Vec<(usize, MixOutcome)>, String> {
                    let mut client = ShardClient::new(addr, mix_client_config(100 + w as u64));
                    client.set_retry_budget(Some(budget));
                    client
                        .health()
                        .map_err(|e| format!("mix worker pre-connect: {e}"))?;
                    let mut out = Vec::new();
                    let mut block = AnswerBlock::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::SeqCst);
                        let Some(a) = arrivals.get(i) else { break };
                        std::thread::sleep(
                            (start + a.offset).saturating_duration_since(Instant::now()),
                        );
                        block.reset();
                        let t0 = Instant::now();
                        let outcome = match client.serve_with_sink_opts(
                            view,
                            &bounds[a.bound_idx],
                            &mut block,
                            a.priority,
                            Deadline::within(Some(a.budget)),
                        ) {
                            Ok(_) => MixOutcome::Accepted(t0.elapsed().as_nanos() as u64),
                            Err(cqc_common::CqcError::Protocol { code: c, .. })
                                if c == code::REFUSED =>
                            {
                                MixOutcome::Refused(t0.elapsed().as_nanos() as u64)
                            }
                            Err(cqc_common::CqcError::Protocol { code: c, .. })
                                if c == code::DEADLINE =>
                            {
                                MixOutcome::Expired(t0.elapsed().as_nanos() as u64)
                            }
                            Err(_) => MixOutcome::Other(t0.elapsed().as_nanos() as u64),
                        };
                        out.push((i, outcome));
                    }
                    Ok(out)
                }),
            );
        }
        for handle in handles {
            let outcomes = handle
                .join()
                .map_err(|_| "mix worker panicked".to_string())??;
            for (i, outcome) in outcomes {
                let class = mix_class(arrivals[i].priority);
                phase.offered[class] += 1;
                let lat = match outcome {
                    MixOutcome::Accepted(ns) => {
                        phase.accepted[class] += 1;
                        phase.accepted_lat.push(ns);
                        if class == 0 {
                            phase.interactive_lat.push(ns);
                        }
                        ns
                    }
                    MixOutcome::Refused(ns) => {
                        phase.refused[class] += 1;
                        ns
                    }
                    MixOutcome::Expired(ns) => {
                        phase.expired[class] += 1;
                        ns
                    }
                    MixOutcome::Other(ns) => {
                        phase.other += 1;
                        ns
                    }
                };
                phase.max_ns = phase.max_ns.max(lat);
            }
        }
        Ok(())
    })?;
    phase.elapsed_ns = start.elapsed().as_nanos() as u64;
    Ok(phase)
}

/// The mix profile: overload robustness, measured.
///
/// One admission-controlled shard server (2 serve slots, a 2-deep
/// priority queue, 300 ms brownout) has every serve padded to a fixed
/// 10 ms by [`Fault::Slowdown`], so measured capacity is ≈ 200 req/s on
/// any host and the open-loop schedule stays generatable by a small
/// worker pool. Capacity is then measured closed-loop through the
/// tail-less v1 wire path, and three open-loop phases replay a
/// Zipf-skewed (s = 1.1) bound distribution at 0.5×/1×/2× that rate
/// with a fixed 70/25/5 Interactive/Batch/Internal class mix, each
/// class carrying its deadline budget (400/1200/800 ms) on the wire.
/// Every worker shares one token-bucket retry budget, and an updater
/// (every 100 ms) plus a health prober (every 20 ms) run throughout —
/// control traffic must never queue behind serves.
///
/// Gates: nothing hangs and every failure is typed; accepted
/// Interactive p99 at 2× meets its 450 ms SLO; goodput at 2× holds ≥
/// 35% of capacity (no congestion collapse); Batch sheds at least as
/// often as Interactive under overload; retry amplification stays
/// under 2×; and Update/Health see zero failures.
fn bench_mix(
    rv: &cqc_engine::RegisteredView,
    engine: &Engine,
    bounds: &[Vec<u64>],
    seed: u64,
    json_path: Option<&str>,
) -> Result<(), String> {
    const WORKERS: usize = 16;
    const PHASE_SPAN: Duration = Duration::from_millis(1200);
    const INTERACTIVE_SLO_NS: u64 = 450_000_000;

    if bounds.is_empty() {
        return Err("mix profile needs at least one request".into());
    }

    let base_db = (*engine.db()).clone();
    let query_text = rv.view.query().to_string();
    let pattern = rv.view.pattern();

    let inner = Engine::new(base_db.clone());
    (&inner as &dyn BlockService)
        .register_view(&rv.name, &query_text, &pattern, "auto")
        .map_err(|e| e.to_string())?;
    let service = Arc::new(ChaosService::new(Arc::new(inner)));
    service.set_fault(Fault::Slowdown(1));
    let server_config = NetServerConfig {
        max_inflight: 2,
        queue_depth: 2,
        brownout_after: Duration::from_millis(300),
        ..NetServerConfig::default()
    };
    let mut handle = NetServer::spawn(
        Arc::clone(&service) as Arc<dyn BlockService>,
        "127.0.0.1:0",
        server_config,
    )
    .map_err(|e| e.to_string())?;
    let addr = handle.addr().to_string();

    // Update stream: deltas precomputed against a shadow database so
    // each one is valid against the state its predecessors left behind.
    let mut view_relations: Vec<&str> = rv
        .view
        .query()
        .atoms
        .iter()
        .map(|a| a.relation.as_str())
        .collect();
    view_relations.sort_unstable();
    view_relations.dedup();
    let mut sim = base_db.clone();
    let mut drng = cqc_workload::rng(seed.wrapping_add(101));
    let mut deltas = Vec::with_capacity(64);
    for _ in 0..64 {
        let delta = mixed_delta(&mut drng, &sim, &view_relations, 2, 1);
        sim.apply(&delta).map_err(|e| e.to_string())?;
        deltas.push(delta);
    }

    let shared_budget = Arc::new(RetryBudget::new(RetryBudgetConfig {
        earn_pct: 20,
        burst: 20,
    }));
    let stop = AtomicBool::new(false);
    let update_rounds = AtomicU64::new(0);
    let update_failures = AtomicU64::new(0);
    let health_probes = AtomicU64::new(0);
    let health_failures = AtomicU64::new(0);

    type PhaseRow = (&'static str, f64, MixPhase, AdmissionStats, AdmissionStats);
    let measured: Result<(f64, Vec<PhaseRow>), String> = std::thread::scope(|s| {
        // Liveness side traffic across the whole run: updates and health
        // probes bypass admission, so queued serves must never starve
        // or fail them.
        let updater = s.spawn(|| {
            let mut client = ShardClient::new(addr.as_str(), mix_client_config(9));
            let mut k = 0usize;
            while !stop.load(Ordering::SeqCst) {
                match client.update(&deltas[k % deltas.len()]) {
                    Ok(_) => update_rounds.fetch_add(1, Ordering::Relaxed),
                    Err(_) => update_failures.fetch_add(1, Ordering::Relaxed),
                };
                k += 1;
                std::thread::sleep(Duration::from_millis(100));
            }
        });
        let prober = s.spawn(|| {
            let mut client = ShardClient::new(addr.as_str(), mix_client_config(11));
            while !stop.load(Ordering::SeqCst) {
                match client.health() {
                    Ok(_) => health_probes.fetch_add(1, Ordering::Relaxed),
                    Err(_) => health_failures.fetch_add(1, Ordering::Relaxed),
                };
                std::thread::sleep(Duration::from_millis(20));
            }
        });

        let work = (|| -> Result<(f64, Vec<PhaseRow>), String> {
            // Capacity: closed-loop through the tail-less v1 wire path
            // (3 workers > 2 slots saturates the server without
            // overflowing its 2-deep queue).
            let completions = AtomicU64::new(0);
            let t0 = Instant::now();
            let span = Duration::from_millis(600);
            std::thread::scope(|cs| -> Result<(), String> {
                let mut hs = Vec::new();
                for w in 0..3usize {
                    let completions = &completions;
                    let addr = addr.as_str();
                    hs.push(cs.spawn(move || -> Result<(), String> {
                        let mut client = ShardClient::new(addr, mix_client_config(50 + w as u64));
                        let mut block = AnswerBlock::new();
                        let mut i = w;
                        while t0.elapsed() < span {
                            block.reset();
                            client
                                .serve_with_sink(&rv.name, &bounds[i % bounds.len()], &mut block)
                                .map_err(|e| format!("capacity serve: {e}"))?;
                            completions.fetch_add(1, Ordering::Relaxed);
                            i += 3;
                        }
                        Ok(())
                    }));
                }
                for h in hs {
                    h.join()
                        .map_err(|_| "capacity worker panicked".to_string())??;
                }
                Ok(())
            })?;
            let capacity = completions.load(Ordering::Relaxed) as f64 / t0.elapsed().as_secs_f64();
            if capacity < 10.0 {
                return Err(format!("implausible measured capacity {capacity:.1} req/s"));
            }

            // The open-loop schedules: Zipf-skewed bounds, deterministic
            // 70/25/5 class mix with per-class deadline budgets.
            let zipf = Zipf::new(bounds.len(), 1.1);
            let mut zrng = cqc_workload::rng(seed.wrapping_add(7));
            let mut schedule = |rate_per_s: f64| -> Vec<MixArrival> {
                let n = ((rate_per_s * PHASE_SPAN.as_secs_f64()) as usize).max(24);
                let spacing = PHASE_SPAN.as_secs_f64() / n as f64;
                (0..n)
                    .map(|i| {
                        let (priority, budget) = match i % 20 {
                            0..=13 => (ServePriority::Interactive, Duration::from_millis(400)),
                            14..=18 => (ServePriority::Batch, Duration::from_millis(1200)),
                            _ => (ServePriority::Internal, Duration::from_millis(800)),
                        };
                        MixArrival {
                            offset: Duration::from_secs_f64(i as f64 * spacing),
                            bound_idx: zipf.sample(&mut zrng) as usize,
                            priority,
                            budget,
                        }
                    })
                    .collect()
            };

            let mut rows: Vec<PhaseRow> = Vec::new();
            for (tag, mult) in [("half", 0.5f64), ("one", 1.0), ("two", 2.0)] {
                let rate = capacity * mult;
                let arrivals = schedule(rate);
                let before = handle.admission_stats();
                let phase = mix_phase(&addr, &rv.name, bounds, &arrivals, WORKERS, &shared_budget)?;
                let after = handle.admission_stats();
                rows.push((tag, rate, phase, before, after));
                // Drain the queue and unlatch any brownout before the
                // next phase changes the offered rate.
                std::thread::sleep(Duration::from_millis(150));
            }
            Ok((capacity, rows))
        })();
        stop.store(true, Ordering::SeqCst);
        let _ = updater.join();
        let _ = prober.join();
        work
    });
    let (capacity, rows) = measured?;

    // The verdicts.
    let offered_total: u64 = rows.iter().map(|r| r.2.offered.iter().sum::<u64>()).sum();
    let other_total: u64 = rows.iter().map(|r| r.2.other).sum();
    let max_request_ns = rows.iter().map(|r| r.2.max_ns).max().unwrap_or(0);
    let spent = shared_budget.spent();
    let denied = shared_budget.denied();
    let amplification = (offered_total + spent) as f64 / offered_total.max(1) as f64;
    let amplification_ok = amplification < 2.0;
    // Every shed is a typed REFUSED/DEADLINE in microseconds; a request
    // past 5 s (budgets top out at 1.2 s) escaped deadline accounting.
    let no_hung_requests = max_request_ns < 5_000_000_000 && other_total == 0;

    let two = &rows[2].2;
    let mut two_interactive = two.interactive_lat.clone();
    let two_interactive_p99 = percentile_ns(&mut two_interactive, 99);
    let interactive_p99_ok = two.accepted[0] > 0 && two_interactive_p99 <= INTERACTIVE_SLO_NS;
    let two_goodput = two.accepted_total() as f64 / (two.elapsed_ns.max(1) as f64 / 1e9);
    let goodput_ok = two_goodput >= 0.35 * capacity;
    let interactive_shed_frac = two.shed(0) as f64 / two.offered[0].max(1) as f64;
    let batch_shed_frac = two.shed(1) as f64 / two.offered[1].max(1) as f64;
    let shed_fairness_ok = batch_shed_frac + 1e-9 >= interactive_shed_frac;
    let rounds = update_rounds.load(Ordering::Relaxed);
    let probes = health_probes.load(Ordering::Relaxed);
    let upd_failures = update_failures.load(Ordering::Relaxed);
    let hp_failures = health_failures.load(Ordering::Relaxed);
    let liveness_ok = upd_failures == 0 && hp_failures == 0 && rounds > 0 && probes > 0;
    let admission = handle.admission_stats();

    println!(
        "bench `{}` [profile mix]: capacity {capacity:.0} req/s (closed-loop, 10 ms padded \
         serves), protocol v{}",
        rv.name,
        cqc_common::frame::PROTOCOL_VERSION
    );
    for (tag, rate, phase, before, after) in &rows {
        let mut lat = phase.accepted_lat.clone();
        let p50 = percentile_ns(&mut lat, 50);
        let p99 = percentile_ns(&mut lat, 99);
        let offered: u64 = phase.offered.iter().sum();
        println!(
            "  {tag}x ({rate:.0}/s): {}/{} accepted ({:.0}/s goodput), p50 {} p99 {}, shed \
             I/B/N {}+{}+{} (server: {} queue-full, {} brownout, {} expired)",
            phase.accepted_total(),
            offered,
            phase.accepted_total() as f64 / (phase.elapsed_ns.max(1) as f64 / 1e9),
            fmt_ns(p50),
            fmt_ns(p99),
            phase.shed(0),
            phase.shed(1),
            phase.shed(2),
            after.shed_queue_full - before.shed_queue_full,
            after.shed_brownout - before.shed_brownout,
            after.shed_expired - before.shed_expired,
        );
    }
    println!(
        "  2x SLO: accepted Interactive p99 {} (≤ 450 ms: {interactive_p99_ok}), goodput \
         {two_goodput:.0}/s (≥ 35% of capacity: {goodput_ok}), shed fraction I {:.2} vs B {:.2} \
         (fair: {shed_fairness_ok})",
        fmt_ns(two_interactive_p99),
        interactive_shed_frac,
        batch_shed_frac
    );
    println!(
        "  retry budget: {spent} spent / {denied} denied — amplification {amplification:.2}x \
         (< 2x: {amplification_ok})"
    );
    println!(
        "  liveness: {rounds} updates ({upd_failures} failed), {probes} health probes \
         ({hp_failures} failed), {} brownouts, max request {}",
        admission.brownouts,
        fmt_ns(max_request_ns)
    );

    if let Some(path) = json_path {
        let mut fields = vec![
            format!("\"view\": {}", json_string(&rv.name)),
            "\"profile\": \"mix\"".to_string(),
            format!(
                "\"protocol_version\": {}",
                cqc_common::frame::PROTOCOL_VERSION
            ),
            format!("\"capacity_per_s\": {capacity:.2}"),
            format!("\"workers\": {WORKERS}"),
            format!("\"offered_total\": {offered_total}"),
        ];
        for (tag, rate, phase, before, after) in &rows {
            let mut lat = phase.accepted_lat.clone();
            let p50 = percentile_ns(&mut lat, 50);
            let p99 = percentile_ns(&mut lat, 99);
            let p999 = permille_ns(&mut lat, 999);
            let goodput = phase.accepted_total() as f64 / (phase.elapsed_ns.max(1) as f64 / 1e9);
            fields.extend([
                format!("\"{tag}_rate_per_s\": {rate:.2}"),
                format!("\"{tag}_offered\": {}", phase.offered.iter().sum::<u64>()),
                format!("\"{tag}_goodput_per_s\": {goodput:.2}"),
                format!("\"{tag}_accepted_p50_ns\": {p50}"),
                format!("\"{tag}_accepted_p99_ns\": {p99}"),
                format!("\"{tag}_accepted_p999_ns\": {p999}"),
                format!("\"{tag}_accepted_interactive\": {}", phase.accepted[0]),
                format!("\"{tag}_accepted_batch\": {}", phase.accepted[1]),
                format!("\"{tag}_accepted_internal\": {}", phase.accepted[2]),
                format!("\"{tag}_shed_interactive\": {}", phase.shed(0)),
                format!("\"{tag}_shed_batch\": {}", phase.shed(1)),
                format!("\"{tag}_shed_internal\": {}", phase.shed(2)),
                format!(
                    "\"{tag}_server_shed_queue_full\": {}",
                    after.shed_queue_full - before.shed_queue_full
                ),
                format!(
                    "\"{tag}_server_shed_brownout\": {}",
                    after.shed_brownout - before.shed_brownout
                ),
                format!(
                    "\"{tag}_server_shed_expired\": {}",
                    after.shed_expired - before.shed_expired
                ),
            ]);
        }
        fields.extend([
            format!("\"server_admitted\": {}", admission.admitted),
            format!(
                "\"server_shed_interactive\": {}",
                admission.shed_interactive
            ),
            format!("\"server_shed_batch\": {}", admission.shed_batch),
            format!("\"server_shed_internal\": {}", admission.shed_internal),
            format!("\"server_brownouts\": {}", admission.brownouts),
            format!("\"budget_spent\": {spent}"),
            format!("\"budget_denied\": {denied}"),
            format!("\"amplification\": {amplification:.3}"),
            format!("\"two_interactive_p99_ns\": {two_interactive_p99}"),
            format!("\"max_request_ns\": {max_request_ns}"),
            format!("\"update_rounds\": {rounds}"),
            format!("\"update_failures\": {upd_failures}"),
            format!("\"health_probes\": {probes}"),
            format!("\"health_failures\": {hp_failures}"),
            format!("\"no_hung_requests\": {no_hung_requests}"),
            format!("\"interactive_p99_ok\": {interactive_p99_ok}"),
            format!("\"goodput_ok\": {goodput_ok}"),
            format!("\"shed_fairness_ok\": {shed_fairness_ok}"),
            format!("\"amplification_ok\": {amplification_ok}"),
            format!("\"liveness_ok\": {liveness_ok}"),
        ]);
        write_json_summary(path, &fields)?;
    }

    handle.shutdown();

    if !no_hung_requests {
        return Err(format!(
            "mix profile self-check failed: max request {} with {other_total} untyped \
             failures — every outcome must be fast or a typed shed",
            fmt_ns(max_request_ns)
        ));
    }
    if !interactive_p99_ok {
        return Err(format!(
            "mix profile self-check failed: accepted Interactive p99 {} at 2x capacity \
             blew the 450 ms SLO",
            fmt_ns(two_interactive_p99)
        ));
    }
    if !goodput_ok {
        return Err(format!(
            "mix profile self-check failed: goodput {two_goodput:.0}/s at 2x offered load \
             fell below 35% of the {capacity:.0}/s capacity (congestion collapse)"
        ));
    }
    if !shed_fairness_ok {
        return Err(format!(
            "mix profile self-check failed: Interactive shed fraction \
             {interactive_shed_frac:.2} exceeded Batch's {batch_shed_frac:.2} under overload"
        ));
    }
    if !amplification_ok {
        return Err(format!(
            "mix profile self-check failed: retry amplification {amplification:.2}x \
             (≥ 2x) — the retry budget failed to bound retry traffic"
        ));
    }
    if !liveness_ok {
        return Err(format!(
            "mix profile self-check failed: control-plane liveness ({rounds} updates, \
             {upd_failures} failed; {probes} health probes, {hp_failures} failed)"
        ));
    }
    Ok(())
}

/// Spawns a child `cqe` that regenerates the dataset and serves it on
/// `addr` backed by `data_dir`; with `crash_after`, the durability layer
/// aborts the process (simulated power cut) right after the n-th WAL
/// append — durable on disk, never acknowledged to the client.
fn spawn_serve_child(
    addr: &str,
    data_dir: &std::path::Path,
    gen: &str,
    crash_after: Option<u64>,
) -> Result<std::process::Child, String> {
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let mut cmd = std::process::Command::new(exe);
    cmd.arg("-e")
        .arg(format!("gen {gen}"))
        .arg("-e")
        .arg(format!("serve {addr} --data-dir={}", data_dir.display()))
        .stdin(std::process::Stdio::null())
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null());
    if let Some(n) = crash_after {
        cmd.env(cqc_durable::CRASH_AFTER_APPENDS_ENV, n.to_string());
    }
    cmd.spawn().map_err(|e| format!("spawn child cqe: {e}"))
}

/// Hard-kills a child (SIGKILL — no destructors, no flush) and reaps it.
fn kill_child(child: &mut Option<std::process::Child>) {
    if let Some(mut c) = child.take() {
        let _ = c.kill();
        let _ = c.wait();
    }
}

/// Connects a fresh client to `addr`, polling `health` until the server
/// answers (a respawned child needs a moment to recover and bind);
/// returns the client and the first healthy epoch vector.
fn connect_healthy(addr: &str, budget: Duration) -> Result<(ShardClient, Vec<u64>), String> {
    let config = ClientConfig {
        connect_attempts: 1,
        backoff_base: Duration::from_millis(5),
        backoff_cap: Duration::from_millis(50),
        io_timeout: Some(Duration::from_secs(2)),
        refused_retries: 3,
        jitter_seed: 9,
    };
    let start = Instant::now();
    loop {
        let mut client = ShardClient::new(addr, config);
        match client.health() {
            Ok(epochs) => return Ok((client, epochs)),
            Err(e) if start.elapsed() > budget => {
                return Err(format!("server on {addr} never became healthy: {e}"));
            }
            Err(_) => {}
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// One byte-for-byte stream comparison pass: `count` requests served both
/// by the child (over the wire) and the in-process oracle; returns
/// `(requests, exact, last miss)`.
fn recovery_serve_check(
    client: &mut ShardClient,
    oracle: &Engine,
    view: &str,
    bounds: &[Vec<u64>],
    cursor: &mut usize,
    count: usize,
) -> Result<(u64, u64, Option<String>), String> {
    let oracle_service: &dyn BlockService = oracle;
    let mut want = AnswerBlock::new();
    let mut got = AnswerBlock::new();
    let (mut attempted, mut exact) = (0u64, 0u64);
    let mut last_miss = None;
    for _ in 0..count.min(bounds.len().max(1)) {
        let bound = &bounds[*cursor % bounds.len()];
        *cursor += 1;
        want.reset();
        oracle_service
            .serve_into(view, bound, &mut want)
            .map_err(|e| format!("recovery oracle serve: {e}"))?;
        got.reset();
        attempted += 1;
        match client.serve_block(view, bound, &mut got) {
            Ok((_, epochs)) if epochs != vec![oracle.epoch()] => {
                last_miss = Some(format!(
                    "serve observed epoch vector {epochs:?}, oracle at {}",
                    oracle.epoch()
                ));
            }
            Ok(_) if got.values() == want.values() => exact += 1,
            Ok((n, _)) => {
                last_miss = Some(format!(
                    "stream diverged from the oracle ({n} answers served, {} expected)",
                    want.len()
                ));
            }
            Err(e) => last_miss = Some(format!("serve failed: {e}")),
        }
    }
    Ok((attempted, exact, last_miss))
}

/// The newest WAL file inside a data directory (the one appends go to).
fn newest_wal(dir: &std::path::Path) -> Result<std::path::PathBuf, String> {
    let mut wals: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("read {}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("wal-") && n.ends_with(".log"))
        })
        .collect();
    wals.sort();
    wals.pop()
        .ok_or_else(|| format!("no wal-*.log in {}", dir.display()))
}

/// The recovery profile: a child `cqe serve --data-dir` process driven
/// through scripted kill points, each restart gated on rejoining at the
/// exact pre-crash epoch with answer streams byte-identical to an
/// uninterrupted in-process oracle.
///
/// The schedule, in order:
///
/// 1. **first boot** — the child regenerates the dataset (`--gen`, same
///    seed as the parent), attaches a fresh data dir, and must come up at
///    the oracle's epoch; baseline serves must be exact.
/// 2. **kill −9 between updates** — one mixed delta lands durably, then
///    the process is hard-killed and respawned: it must rejoin at the
///    post-delta epoch and serve exactly (views re-registered — they are
///    not persisted, by design).
/// 3. **kill −9 mid-apply** — the respawned child aborts *inside* the
///    update, after the WAL fsync but before acknowledging (the
///    worst-case power cut): the client sees an I/O error, yet the next
///    restart must surface the delta — durable means durable, acked or
///    not (the epoch probe is how a real client disambiguates, exactly as
///    with preconditioned updates).
/// 4. **torn tail** — garbage is appended to the WAL while the child is
///    dead (a torn final write): recovery must truncate it cleanly —
///    same epoch, same answers, WAL physically back to its valid length.
/// 5. **idempotent restart** — one final kill/restart with nothing new:
///    recovery of a recovered directory must be a fixed point.
fn bench_recovery(
    rv: &cqc_engine::RegisteredView,
    engine: &Engine,
    bounds: &[Vec<u64>],
    gen: Option<&str>,
    json_path: Option<&str>,
) -> Result<(), String> {
    let Some(gen) = gen else {
        return Err(
            "--profile recovery needs --gen=\"<gen args>\" matching the script's own `gen` \
             (the child process replays it to rebuild the dataset on first boot)"
                .into(),
        );
    };
    let query_text = rv.view.query().to_string();
    let pattern = rv.view.pattern();

    // The uninterrupted oracle: same database, same view, updated in
    // lockstep with what the child durably applied.
    let oracle = Engine::new((*engine.db()).clone());
    (&oracle as &dyn BlockService)
        .register_view(&rv.name, &query_text, &pattern, "auto")
        .map_err(|e| e.to_string())?;

    let mut view_relations: Vec<&str> = rv
        .view
        .query()
        .atoms
        .iter()
        .map(|a| a.relation.as_str())
        .collect();
    view_relations.sort_unstable();
    view_relations.dedup();

    // A free loopback port (bind, read, release) and a scratch data dir.
    let port = std::net::TcpListener::bind("127.0.0.1:0")
        .and_then(|l| l.local_addr())
        .map_err(|e| format!("pick port: {e}"))?
        .port();
    let addr = format!("127.0.0.1:{port}");
    let data_dir = std::env::temp_dir().join(format!("cqc-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&data_dir);

    let mut child: Option<std::process::Child> = None;
    let outcome = (|| -> Result<(Vec<String>, Vec<String>), String> {
        let health_budget = Duration::from_secs(20);
        let register = |client: &mut ShardClient| -> Result<(), String> {
            client
                .register(&cqc_net::protocol::RegisterReq {
                    name: rv.name.clone(),
                    query: query_text.clone(),
                    pattern: pattern.clone(),
                    strategy: "auto".into(),
                })
                .map(|_| ())
                .map_err(|e| format!("remote register: {e}"))
        };
        let mut cursor = 0usize;
        let mut gates: Vec<(&str, bool, String)> = Vec::new();
        let mut gate = |name: &'static str, ok: bool, detail: String| {
            println!("  [{}] {name}: {detail}", if ok { "ok" } else { "FAIL" });
            gates.push((name, ok, detail));
        };
        let mut kills = 0u32;
        let mut compared = 0u64;

        // Phase 1: first boot — fresh data dir, oracle-equal epoch.
        child = Some(spawn_serve_child(&addr, &data_dir, gen, None)?);
        let (mut client, epochs) = connect_healthy(&addr, health_budget)?;
        gate(
            "first_boot_epoch",
            epochs == vec![oracle.epoch()],
            format!("child at {epochs:?}, oracle at {}", oracle.epoch()),
        );
        register(&mut client)?;
        let (a, e, miss) =
            recovery_serve_check(&mut client, &oracle, &rv.name, bounds, &mut cursor, 8)?;
        compared += a;
        gate(
            "baseline_exact",
            a > 0 && a == e,
            miss.unwrap_or_else(|| format!("{e}/{a} exact")),
        );

        // Phase 2: a durable update, then kill −9 between updates.
        let mut rng = cqc_workload::rng(31);
        let delta = mixed_delta(&mut rng, &oracle.db(), &view_relations, 4, 2);
        client
            .update(&delta)
            .map_err(|e| format!("update before kill: {e}"))?;
        (&oracle as &dyn BlockService)
            .apply_update(&delta)
            .map_err(|e| e.to_string())?;
        kill_child(&mut child);
        kills += 1;
        child = Some(spawn_serve_child(&addr, &data_dir, gen, None)?);
        let (mut client, epochs) = connect_healthy(&addr, health_budget)?;
        gate(
            "kill9_rejoins_at_pre_crash_epoch",
            epochs == vec![oracle.epoch()],
            format!("child at {epochs:?}, oracle at {}", oracle.epoch()),
        );
        register(&mut client)?;
        let (a, e, miss) =
            recovery_serve_check(&mut client, &oracle, &rv.name, bounds, &mut cursor, 8)?;
        compared += a;
        gate(
            "kill9_streams_exact",
            a > 0 && a == e,
            miss.unwrap_or_else(|| format!("{e}/{a} exact")),
        );

        // Phase 3: kill −9 *mid-apply* — the child aborts after the WAL
        // fsync, before replying. The delta is durable but unacknowledged;
        // the restart must surface it anyway.
        kill_child(&mut child);
        kills += 1;
        child = Some(spawn_serve_child(&addr, &data_dir, gen, Some(1))?);
        let (mut client, _) = connect_healthy(&addr, health_budget)?;
        let delta = mixed_delta(&mut rng, &oracle.db(), &view_relations, 3, 1);
        let update_errored = client.update(&delta).is_err();
        gate(
            "mid_apply_update_unacknowledged",
            update_errored,
            "the aborting child must never acknowledge".into(),
        );
        // The append preceded the abort, so the delta IS on disk: the
        // oracle applies it too. (A real client would probe `health` — an
        // epoch one past the precondition means the update landed.)
        (&oracle as &dyn BlockService)
            .apply_update(&delta)
            .map_err(|e| e.to_string())?;
        kill_child(&mut child); // reap the aborted process
        kills += 1;
        child = Some(spawn_serve_child(&addr, &data_dir, gen, None)?);
        let (mut client, epochs) = connect_healthy(&addr, health_budget)?;
        gate(
            "mid_apply_delta_survives",
            epochs == vec![oracle.epoch()],
            format!("child at {epochs:?}, oracle at {}", oracle.epoch()),
        );
        register(&mut client)?;
        let (a, e, miss) =
            recovery_serve_check(&mut client, &oracle, &rv.name, bounds, &mut cursor, 8)?;
        compared += a;
        gate(
            "mid_apply_streams_exact",
            a > 0 && a == e,
            miss.unwrap_or_else(|| format!("{e}/{a} exact")),
        );

        // Phase 4: torn tail — garbage lands after the last record while
        // the process is dead; recovery truncates it, losing nothing.
        kill_child(&mut child);
        kills += 1;
        let wal = newest_wal(&data_dir)?;
        let valid_len = std::fs::metadata(&wal).map_err(|e| e.to_string())?.len();
        {
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&wal)
                .map_err(|e| e.to_string())?;
            f.write_all(&[0xA5u8; 13]).map_err(|e| e.to_string())?;
        }
        child = Some(spawn_serve_child(&addr, &data_dir, gen, None)?);
        let (mut client, epochs) = connect_healthy(&addr, health_budget)?;
        let truncated_len = std::fs::metadata(&wal).map_err(|e| e.to_string())?.len();
        gate(
            "torn_tail_truncated",
            truncated_len == valid_len,
            format!("wal {truncated_len} bytes after recovery (valid prefix {valid_len})"),
        );
        gate(
            "torn_tail_epoch_intact",
            epochs == vec![oracle.epoch()],
            format!("child at {epochs:?}, oracle at {}", oracle.epoch()),
        );
        register(&mut client)?;
        let (a, e, miss) =
            recovery_serve_check(&mut client, &oracle, &rv.name, bounds, &mut cursor, 8)?;
        compared += a;
        gate(
            "torn_tail_streams_exact",
            a > 0 && a == e,
            miss.unwrap_or_else(|| format!("{e}/{a} exact")),
        );

        // Phase 5: recovery is a fixed point — one more restart with
        // nothing new must change nothing.
        kill_child(&mut child);
        kills += 1;
        child = Some(spawn_serve_child(&addr, &data_dir, gen, None)?);
        let (mut client, epochs) = connect_healthy(&addr, health_budget)?;
        register(&mut client)?;
        let (a, e, miss) =
            recovery_serve_check(&mut client, &oracle, &rv.name, bounds, &mut cursor, 8)?;
        compared += a;
        gate(
            "restart_idempotent",
            epochs == vec![oracle.epoch()] && a > 0 && a == e,
            miss.unwrap_or_else(|| format!("epoch {epochs:?}, {e}/{a} exact")),
        );

        let failed: Vec<String> = gates
            .iter()
            .filter(|(_, ok, _)| !ok)
            .map(|(name, _, _)| name.to_string())
            .collect();
        println!(
            "bench `{}` [profile recovery]: {kills} kill(-9)s, {compared} answer streams \
             compared, final epoch {}",
            rv.name,
            oracle.epoch()
        );
        let mut fields = vec![
            format!("\"view\": {}", json_string(&rv.name)),
            "\"profile\": \"recovery\"".to_string(),
            format!("\"gen\": {}", json_string(gen)),
            format!("\"kills\": {kills}"),
            format!("\"streams_compared\": {compared}"),
            format!("\"final_epoch\": {}", oracle.epoch()),
        ];
        for (name, ok, _) in &gates {
            fields.push(format!("\"{name}\": {ok}"));
        }
        fields.push(format!("\"recovery_ok\": {}", failed.is_empty()));
        Ok((fields, failed))
    })();

    kill_child(&mut child);
    let _ = std::fs::remove_dir_all(&data_dir);
    let (fields, failed) = outcome?;
    if let Some(path) = json_path {
        write_json_summary(path, &fields)?;
    }
    if !failed.is_empty() {
        return Err(format!(
            "recovery profile self-check failed: {}",
            failed.join(", ")
        ));
    }
    Ok(())
}

/// `threads` must be 1 for profiles that manage their own threading.
fn require_single_threaded(profile: &str, threads: usize) -> Result<(), String> {
    if threads != 1 {
        return Err(format!(
            "--profile {profile} manages its own measurement loop; \
             pass 1 thread, not {threads}"
        ));
    }
    Ok(())
}

/// Best wall time of three runs of `f` — on an oversubscribed host a single
/// measurement is at the mercy of the scheduler; the fastest run reflects
/// the work itself.
fn best_of_3_ns(mut f: impl FnMut() -> Result<u64, String>) -> Result<u64, String> {
    let mut best = u64::MAX;
    for _ in 0..3 {
        best = best.min(f()?);
    }
    Ok(best)
}

/// Assembles `fields` into the flat JSON object every profile writes, and
/// reports the path — the shared tail of all `--json` flows.
fn write_json_summary(path: &str, fields: &[String]) -> Result<(), String> {
    let json = format!("{{\n  {}\n}}\n", fields.join(",\n  "));
    std::fs::write(path, json).map_err(|e| format!("write `{path}`: {e}"))?;
    println!("  wrote JSON summary to {path}");
    Ok(())
}

/// Escapes a string per RFC 8259 (Rust's `{:?}` is close but emits the
/// non-JSON `\u{…}` brace syntax for non-ASCII characters).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Hand-rolled JSON fields (the environment has no serde): flat summary
/// for per-commit perf tracking. `wall_ns` is serving-only wall time.
fn serve_json_fields(
    name: &str,
    requests: usize,
    threads: usize,
    wall_ns: u64,
    batch: &BatchStats,
    rebuilds: u64,
    updates: Option<(usize, &UpdateReport, usize)>,
) -> Vec<String> {
    let mut fields = vec![
        format!("\"view\": {}", json_string(name)),
        format!("\"requests\": {requests}"),
        format!("\"threads\": {threads}"),
        format!("\"wall_ns\": {wall_ns}"),
        format!(
            "\"req_per_s\": {:.1}",
            requests as f64 / (wall_ns.max(1) as f64 / 1e9)
        ),
        format!("\"tuples\": {}", batch.tuples),
        format!("\"max_delay_ns\": {}", batch.max_delay_ns),
        format!("\"mean_p99_ns\": {}", batch.mean_p99_ns),
        format!("\"trie_seeks\": {}", batch.trie_seeks),
        format!("\"serve_rebuilds\": {rebuilds}"),
    ];
    if let Some((rounds, u, violations)) = updates {
        fields.push(format!("\"update_rounds\": {rounds}"));
        fields.push(format!("\"delta_tuples\": {}", u.delta_tuples));
        fields.push(format!("\"delta_maintained\": {}", u.maintained));
        fields.push(format!("\"update_rebuilt\": {}", u.rebuilt));
        fields.push(format!("\"update_restamped\": {}", u.restamped));
        fields.push(format!("\"stale_serve_violations\": {violations}"));
        fields.push(format!("\"final_epoch\": {}", u.epoch));
    }
    fields
}
