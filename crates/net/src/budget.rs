//! Per-destination retry budgets: the token bucket that stops retries,
//! failovers, and hedges from amplifying a brownout into a retry storm.
//!
//! Every retry mechanism in this crate multiplies load exactly when the
//! fleet can least afford it: a shard that sheds under overload sees
//! each refused request come back `1 + retries` times. The fix is the
//! classic *retry budget*: each **successful** request earns a fraction
//! of a token ([`RetryBudgetConfig::earn_pct`] per hundred), each retry
//! or hedge **spends** a whole one, and the bucket is capped at
//! [`RetryBudgetConfig::burst`] so an idle destination can absorb a
//! short fault burst but a browning-out destination converges to at
//! most `earn_pct`% amplification. A denied spend is **backpressure,
//! not failure**: callers skip the retry (or hedge) and surface the
//! last real error — they never feed the denial into a circuit breaker,
//! which would punish the destination for our own restraint.
//!
//! One budget guards one destination (a [`crate::ReplicaGroup`] shares
//! one across its replicas' failovers and hedges; a bare
//! [`crate::ShardClient`] can be handed one for its bounded-REFUSED
//! retry loop), so a single slow shard cannot drain the whole fleet's
//! retry allowance.

use std::sync::Mutex;

/// Tuning for one [`RetryBudget`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryBudgetConfig {
    /// Tokens earned per hundred successful requests — the steady-state
    /// ceiling on retry amplification (20 ⇒ at most 1.2× under
    /// sustained overload, once the burst allowance is spent).
    pub earn_pct: u32,
    /// Bucket capacity in whole tokens, and the initial fill: the
    /// fault burst a destination can absorb from a standing start.
    pub burst: u32,
}

impl Default for RetryBudgetConfig {
    fn default() -> RetryBudgetConfig {
        RetryBudgetConfig {
            earn_pct: 20,
            burst: 10,
        }
    }
}

#[derive(Debug)]
struct BudgetState {
    /// Fixed-point token balance in hundredths of a token.
    centitokens: u64,
    spent: u64,
    denied: u64,
}

/// A token-bucket retry budget (see the module docs). Interior-mutable
/// and cheap to share: one short critical section per event.
#[derive(Debug)]
pub struct RetryBudget {
    config: RetryBudgetConfig,
    state: Mutex<BudgetState>,
}

impl RetryBudget {
    /// A full bucket (`burst` tokens) under `config`.
    pub fn new(config: RetryBudgetConfig) -> RetryBudget {
        RetryBudget {
            config,
            state: Mutex::new(BudgetState {
                centitokens: u64::from(config.burst) * 100,
                spent: 0,
                denied: 0,
            }),
        }
    }

    /// Credits one successful request: `earn_pct`/100 of a token,
    /// capped at `burst`.
    pub fn record_success(&self) {
        let mut st = self.state.lock().expect("budget lock");
        st.centitokens = (st.centitokens + u64::from(self.config.earn_pct))
            .min(u64::from(self.config.burst) * 100);
    }

    /// Tries to spend one whole token for a retry or hedge. `false`
    /// means the budget is exhausted — skip the retry and treat the
    /// condition as backpressure (never as a breaker-visible failure).
    pub fn try_spend(&self) -> bool {
        let mut st = self.state.lock().expect("budget lock");
        if st.centitokens >= 100 {
            st.centitokens -= 100;
            st.spent += 1;
            true
        } else {
            st.denied += 1;
            false
        }
    }

    /// Retries/hedges granted so far — the numerator of the bench
    /// harness's retry-amplification factor.
    pub fn spent(&self) -> u64 {
        self.state.lock().expect("budget lock").spent
    }

    /// Retries/hedges denied so far (each one is a retry storm that
    /// did not happen).
    pub fn denied(&self) -> u64 {
        self.state.lock().expect("budget lock").denied
    }

    /// Whole tokens currently available (rounded down).
    pub fn available(&self) -> u64 {
        self.state.lock().expect("budget lock").centitokens / 100
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_allowance_then_exhaustion() {
        let b = RetryBudget::new(RetryBudgetConfig {
            earn_pct: 20,
            burst: 3,
        });
        assert_eq!(b.available(), 3);
        assert!(b.try_spend());
        assert!(b.try_spend());
        assert!(b.try_spend());
        assert!(!b.try_spend(), "burst spent, no successes yet");
        assert_eq!(b.spent(), 3);
        assert_eq!(b.denied(), 1);
    }

    #[test]
    fn successes_earn_a_fraction_of_a_token() {
        let b = RetryBudget::new(RetryBudgetConfig {
            earn_pct: 20,
            burst: 1,
        });
        assert!(b.try_spend());
        assert!(!b.try_spend());
        // Four successes at 20% each: still shy of a whole token.
        for _ in 0..4 {
            b.record_success();
        }
        assert!(!b.try_spend());
        b.record_success();
        assert!(b.try_spend(), "five successes fund one retry at 20%");
    }

    #[test]
    fn the_bucket_caps_at_burst() {
        let b = RetryBudget::new(RetryBudgetConfig {
            earn_pct: 100,
            burst: 2,
        });
        for _ in 0..1000 {
            b.record_success();
        }
        assert_eq!(b.available(), 2, "credits must not accumulate past burst");
        assert!(b.try_spend());
        assert!(b.try_spend());
        assert!(!b.try_spend());
    }

    #[test]
    fn amplification_is_bounded_by_the_earn_rate() {
        // The property the mixed-workload bench gates on: with a 20%
        // earn rate, N successes can never fund more than burst + N/5
        // retries — amplification stays under 2× however hard the
        // caller hammers.
        let b = RetryBudget::new(RetryBudgetConfig::default());
        let mut granted = 0u64;
        let n = 1000u64;
        for _ in 0..n {
            b.record_success();
            // An adversarial caller tries to retry after every request.
            if b.try_spend() {
                granted += 1;
            }
        }
        assert!(
            granted <= 10 + n / 5 + 1,
            "granted {granted} retries exceeds burst + 20% of {n}"
        );
        assert!(granted >= n / 5, "the earn rate must actually fund retries");
    }
}
