//! Message-level encoding over the [`cqc_common::frame`] codec.
//!
//! One function pair per message: `encode_*` fills a reusable
//! [`PayloadWriter`], `parse_*` reads a received payload back with every
//! bound check mapped to a typed [`code::BAD_FRAME`] protocol error. The
//! layouts (protocol version 1):
//!
//! | frame | payload |
//! |---|---|
//! | `Register` | `str name \| str query \| str pattern \| str strategy` |
//! | `Serve` | `str view \| u16 n \| n×u64 bound values`, then an optional deadline/priority tail (`u8 priority \| u64 budget_ns`; see [`cqc_common::frame::ServeTail`]) |
//! | `Update` | insert section, then an optional identical removes section (`u32 groups \| per group: str rel, u16 arity, u32 rows, rows×arity u64` each), then an optional epoch-vector precondition (`u32 n \| n×u64`; its presence forces the removes section out, possibly empty) |
//! | `Health` | empty |
//! | `RegisterOk` / `UpdateOk` / `HealthOk` | epoch vector (`u32 n \| n×u64`) |
//! | `Chunk` | `u16 arity \| u32 count \| count×arity u64` (see [`cqc_common::frame`]) |
//! | `ServeDone` | `u64 total \| epoch vector` |
//! | `Error` | `u16 code \| str detail` |
//!
//! `str` is `u32 len | UTF-8 bytes`; all integers little endian.

use cqc_common::error::Result;
use cqc_common::frame::{
    code, decode_serve_tail, encode_epochs, encode_serve_tail, PayloadReader, PayloadWriter,
    ServeTail,
};
use cqc_common::{CqcError, Value};
use cqc_storage::{Delta, Epoch};

/// A parsed register request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegisterReq {
    /// View name to bind.
    pub name: String,
    /// Conjunctive query text.
    pub query: String,
    /// Adornment pattern (`b`/`f` per head variable).
    pub pattern: String,
    /// Strategy token (the [`cqc_engine::Policy::parse`] grammar).
    pub strategy: String,
}

/// A parsed serve request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeReq {
    /// Registered view name.
    pub view: String,
    /// Bound-variable values, pattern order.
    pub bound: Vec<Value>,
    /// The optional deadline/priority tail. `None` — a tail-less v1
    /// frame — means Interactive with no deadline.
    pub tail: Option<ServeTail>,
}

/// Encodes a [`RegisterReq`] into `w` (cleared first).
pub fn encode_register(w: &mut PayloadWriter, req: &RegisterReq) {
    w.start()
        .put_str(&req.name)
        .put_str(&req.query)
        .put_str(&req.pattern)
        .put_str(&req.strategy);
}

/// Parses a [`RegisterReq`].
///
/// # Errors
///
/// [`code::BAD_FRAME`] on truncation or non-UTF-8 strings.
pub fn parse_register(payload: &[u8]) -> Result<RegisterReq> {
    let mut r = PayloadReader::new(payload);
    Ok(RegisterReq {
        name: r.get_str()?.to_string(),
        query: r.get_str()?.to_string(),
        pattern: r.get_str()?.to_string(),
        strategy: r.get_str()?.to_string(),
    })
}

/// Encodes a tail-less [`ServeReq`] into `w` (cleared first) —
/// byte-identical to protocol v1.
pub fn encode_serve(w: &mut PayloadWriter, view: &str, bound: &[Value]) {
    encode_serve_tailed(w, view, bound, None);
}

/// [`encode_serve`] with an optional deadline/priority tail
/// (`u8 priority | u64 budget_ns`, see
/// [`cqc_common::frame::encode_serve_tail`]) appended after the bound
/// values. Without a tail the layout is exactly [`encode_serve`]'s, so
/// callers that never set one keep emitting v1 bytes.
pub fn encode_serve_tailed(
    w: &mut PayloadWriter,
    view: &str,
    bound: &[Value],
    tail: Option<&ServeTail>,
) {
    w.start().put_str(view).put_u16(bound.len() as u16);
    w.put_values(bound);
    if let Some(tail) = tail {
        encode_serve_tail(w, tail);
    }
}

/// Parses a [`ServeReq`]: the view and bound values always, then the
/// deadline/priority tail iff the payload has bytes left (older
/// encoders simply end after the bound values).
///
/// # Errors
///
/// [`code::BAD_FRAME`] on truncation, non-UTF-8 strings, an unknown
/// priority byte, or trailing bytes past the tail.
pub fn parse_serve(payload: &[u8]) -> Result<ServeReq> {
    let mut r = PayloadReader::new(payload);
    let view = r.get_str()?.to_string();
    let n = r.get_u16()? as usize;
    let mut bound = Vec::with_capacity(n);
    r.get_values(n, &mut bound)?;
    let tail = if r.remaining() > 0 {
        Some(decode_serve_tail(&mut r)?)
    } else {
        None
    };
    if r.remaining() > 0 {
        return Err(CqcError::Protocol {
            code: code::BAD_FRAME,
            detail: format!("{} trailing bytes after the serve payload", r.remaining()),
        });
    }
    Ok(ServeReq { view, bound, tail })
}

/// Encodes a [`Delta`] into `w` (cleared first): the insert section, then —
/// only when the delta carries removals — an identically shaped removes
/// section. Insert-only deltas therefore encode byte-identically to the
/// pre-deletion layout, which is what keeps protocol version 1 forward
/// compatible ([`parse_update`] reads removes iff bytes remain). Empty
/// groups are dropped (they carry no information and a zero arity would be
/// ambiguous).
///
/// The byte layout itself lives in [`cqc_storage::wire`] — one codec
/// shared with the durable write-ahead log — so a logged delta and a wire
/// delta replay through the same parser.
pub fn encode_update(w: &mut PayloadWriter, delta: &Delta) {
    encode_update_preconditioned(w, delta, None);
}

/// [`encode_update`] with an optional epoch-vector precondition tail
/// (`u32 n | n×u64`, the [`cqc_common::frame::encode_epochs`] layout).
/// The tails are sequential-optional, so a precondition forces the
/// removes section out — possibly with zero groups — to keep the parse
/// unambiguous; without a precondition the layout is exactly
/// [`encode_update`]'s.
pub fn encode_update_preconditioned(
    w: &mut PayloadWriter,
    delta: &Delta,
    precondition: Option<&[Epoch]>,
) {
    w.start();
    cqc_storage::wire::put_delta(w, delta, precondition.is_some());
    if let Some(epochs) = precondition {
        encode_epochs(w, epochs);
    }
}

/// Parses a [`Delta`]: the insert section always, then a removes section
/// iff the payload has bytes left (older insert-only encoders simply end
/// after the first section). A precondition tail, if present, is
/// discarded — servers use [`parse_update_preconditioned`].
///
/// # Errors
///
/// [`code::BAD_FRAME`] on truncation, non-UTF-8 strings, or a tuple whose
/// arity disagrees with its group header.
pub fn parse_update(payload: &[u8]) -> Result<Delta> {
    parse_update_preconditioned(payload).map(|(delta, _)| delta)
}

/// Parses a [`Delta`] plus its optional epoch-vector precondition: the
/// insert section always, then a removes section iff bytes remain, then
/// the precondition iff bytes *still* remain (see
/// [`encode_update_preconditioned`] for why this nesting is unambiguous).
///
/// # Errors
///
/// [`code::BAD_FRAME`] on truncation, non-UTF-8 strings, a tuple whose
/// arity disagrees with its group header, or trailing bytes past the
/// precondition.
pub fn parse_update_preconditioned(payload: &[u8]) -> Result<(Delta, Option<Vec<Epoch>>)> {
    let mut r = PayloadReader::new(payload);
    let delta = cqc_storage::wire::read_delta(&mut r)?;
    let precondition = if r.remaining() > 0 {
        Some(cqc_common::frame::decode_epochs(&mut r)?)
    } else {
        None
    };
    if r.remaining() > 0 {
        return Err(CqcError::Protocol {
            code: code::BAD_FRAME,
            detail: format!("{} trailing bytes after the update payload", r.remaining()),
        });
    }
    Ok((delta, precondition))
}

/// Encodes a `ServeDone` payload (`u64 total | epoch vector`) into `w`
/// (cleared first).
pub fn encode_serve_done(w: &mut PayloadWriter, total: u64, epochs: &[Epoch]) {
    w.start().put_u64(total);
    encode_epochs(w, epochs);
}

/// Parses a `ServeDone` payload back into `(total, epochs)`.
///
/// # Errors
///
/// [`code::BAD_FRAME`] on truncation.
pub fn parse_serve_done(payload: &[u8]) -> Result<(u64, Vec<Epoch>)> {
    let mut r = PayloadReader::new(payload);
    let total = r.get_u64()?;
    let epochs = cqc_common::frame::decode_epochs(&mut r)?;
    Ok((total, epochs))
}

/// Encodes an epoch-vector-only payload (`RegisterOk`, `UpdateOk`,
/// `HealthOk`) into `w` (cleared first).
pub fn encode_epoch_reply(w: &mut PayloadWriter, epochs: &[Epoch]) {
    encode_epochs(w.start(), epochs);
}

/// Parses an epoch-vector-only payload.
///
/// # Errors
///
/// [`code::BAD_FRAME`] on truncation.
pub fn parse_epoch_reply(payload: &[u8]) -> Result<Vec<Epoch>> {
    cqc_common::frame::decode_epochs(&mut PayloadReader::new(payload))
}

/// Encodes an error payload (`u16 code | str detail`) into `w` (cleared
/// first).
pub fn encode_error(w: &mut PayloadWriter, e: &CqcError) {
    w.start()
        .put_u16(cqc_common::frame::error_code(e))
        .put_str(&e.to_string());
}

/// Parses an error payload back into the typed [`CqcError`] it encodes
/// (via [`cqc_common::frame::decode_error`]).
///
/// # Errors
///
/// [`code::BAD_FRAME`] on truncation — of the *carrier*; the carried
/// error comes back in the `Ok` arm by design.
pub fn parse_error(payload: &[u8]) -> Result<CqcError> {
    let mut r = PayloadReader::new(payload);
    let code_ = r.get_u16()?;
    let detail = r.get_str()?;
    Ok(cqc_common::frame::decode_error(code_, detail))
}

/// A typed refusal for an unexpected frame kind — the shared "the peer is
/// speaking out of turn" error both ends raise.
pub fn unexpected_frame(context: &str, kind: cqc_common::frame::FrameKind) -> CqcError {
    CqcError::Protocol {
        code: code::BAD_FRAME,
        detail: format!("unexpected {kind:?} frame {context}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_round_trips() {
        let req = RegisterReq {
            name: "tri".into(),
            query: "V(x,y,z) :- R(x,y), S(y,z), T(z,x)".into(),
            pattern: "bff".into(),
            strategy: "tau:2".into(),
        };
        let mut w = PayloadWriter::new();
        encode_register(&mut w, &req);
        assert_eq!(parse_register(w.bytes()).unwrap(), req);
    }

    #[test]
    fn serve_round_trips() {
        let mut w = PayloadWriter::new();
        encode_serve(&mut w, "tri", &[7, 11]);
        let req = parse_serve(w.bytes()).unwrap();
        assert_eq!(req.view, "tri");
        assert_eq!(req.bound, vec![7, 11]);
        assert_eq!(req.tail, None);
        // Empty bound vectors (fff patterns) survive.
        encode_serve(&mut w, "all", &[]);
        assert!(parse_serve(w.bytes()).unwrap().bound.is_empty());
    }

    #[test]
    fn tailless_serve_keeps_v1_wire_layout() {
        // Forward compatibility: a serve without a deadline/priority
        // tail must encode exactly as protocol v1 did — view, count,
        // bound values, nothing after — so older peers keep parsing it.
        let mut w = PayloadWriter::new();
        encode_serve(&mut w, "tri", &[7, 11]);
        let mut expect = PayloadWriter::new();
        expect.start().put_str("tri").put_u16(2);
        expect.put_values(&[7, 11]);
        assert_eq!(w.bytes(), expect.bytes());
        // The tailed encoder with `None` is the same bytes.
        encode_serve_tailed(&mut w, "tri", &[7, 11], None);
        assert_eq!(w.bytes(), expect.bytes());
    }

    #[test]
    fn tailed_serve_round_trips() {
        use cqc_common::frame::ServePriority;
        for tail in [
            ServeTail {
                priority: ServePriority::Interactive,
                budget_ns: Some(2_000_000),
            },
            ServeTail {
                priority: ServePriority::Batch,
                budget_ns: None,
            },
            ServeTail {
                priority: ServePriority::Internal,
                budget_ns: Some(0),
            },
        ] {
            let mut w = PayloadWriter::new();
            encode_serve_tailed(&mut w, "tri", &[5], Some(&tail));
            let req = parse_serve(w.bytes()).unwrap();
            assert_eq!(req.view, "tri");
            assert_eq!(req.bound, vec![5]);
            assert_eq!(req.tail, Some(tail));
        }
        // A tailed zero-bound serve stays unambiguous: the tail is read
        // by remaining bytes, not by the bound count.
        let tail = ServeTail {
            priority: ServePriority::Batch,
            budget_ns: Some(99),
        };
        let mut w = PayloadWriter::new();
        encode_serve_tailed(&mut w, "all", &[], Some(&tail));
        assert_eq!(parse_serve(w.bytes()).unwrap().tail, Some(tail));
    }

    #[test]
    fn garbage_after_serve_tail_is_rejected() {
        let mut w = PayloadWriter::new();
        let tail = ServeTail::default();
        encode_serve_tailed(&mut w, "tri", &[1], Some(&tail));
        let mut bytes = w.bytes().to_vec();
        bytes.push(0xEE);
        let err = parse_serve(&bytes).unwrap_err();
        assert!(
            matches!(
                err,
                CqcError::Protocol {
                    code: code::BAD_FRAME,
                    ..
                }
            ),
            "{err}"
        );
        // A truncated tail (a lone priority byte, budget missing) is a
        // typed BAD_FRAME too, never a silent tail-less parse.
        encode_serve(&mut w, "tri", &[1]);
        let mut bytes = w.bytes().to_vec();
        bytes.push(0); // priority byte with no budget after it
        let err = parse_serve(&bytes).unwrap_err();
        assert!(
            matches!(
                err,
                CqcError::Protocol {
                    code: code::BAD_FRAME,
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn update_round_trips() {
        let mut delta = Delta::new();
        delta.insert("R", vec![1, 2]);
        delta.insert("R", vec![3, 4]);
        delta.insert("S", vec![5, 6]);
        let mut w = PayloadWriter::new();
        encode_update(&mut w, &delta);
        let back = parse_update(w.bytes()).unwrap();
        assert_eq!(back.tuples_for("R").unwrap(), &[vec![1, 2], vec![3, 4]]);
        assert_eq!(back.tuples_for("S").unwrap(), &[vec![5, 6]]);
        assert_eq!(back.total_tuples(), 3);
    }

    #[test]
    fn mixed_update_round_trips() {
        let mut delta = Delta::new();
        delta.insert("R", vec![1, 2]);
        delta.remove("R", vec![9, 9]);
        delta.remove("T", vec![7]);
        let mut w = PayloadWriter::new();
        encode_update(&mut w, &delta);
        let back = parse_update(w.bytes()).unwrap();
        assert_eq!(back, delta);
        // Remove-only deltas survive too (empty insert section).
        let mut delta = Delta::new();
        delta.remove("S", vec![5, 6]);
        encode_update(&mut w, &delta);
        assert_eq!(parse_update(w.bytes()).unwrap(), delta);
    }

    #[test]
    fn insert_only_update_keeps_v1_wire_layout() {
        // Forward compatibility: an insert-only delta must encode exactly
        // as the pre-deletion layout did — no removes section at all — so
        // older peers keep parsing it.
        let mut delta = Delta::new();
        delta.insert("R", vec![1, 2]);
        let mut w = PayloadWriter::new();
        encode_update(&mut w, &delta);
        let mut expect = PayloadWriter::new();
        expect.start().put_u32(1).put_str("R").put_u16(2).put_u32(1);
        expect.put_values(&[1, 2]);
        assert_eq!(w.bytes(), expect.bytes());
        // A delta whose removals were all withdrawn (last write wins) is
        // insert-only on the wire as well.
        let mut delta = Delta::new();
        delta.remove("R", vec![1, 2]);
        delta.insert("R", vec![1, 2]);
        encode_update(&mut w, &delta);
        assert_eq!(w.bytes(), expect.bytes());
    }

    #[test]
    fn preconditioned_updates_round_trip() {
        // Insert-only with a precondition: the removes section is forced
        // out (empty) so the epochs tail cannot be misread as removes.
        let mut delta = Delta::new();
        delta.insert("R", vec![1, 2]);
        let mut w = PayloadWriter::new();
        encode_update_preconditioned(&mut w, &delta, Some(&[3, 1, 4]));
        let (back, pre) = parse_update_preconditioned(w.bytes()).unwrap();
        assert_eq!(back, delta);
        assert_eq!(pre, Some(vec![3, 1, 4]));
        // The legacy parser still reads the delta (precondition ignored).
        assert_eq!(parse_update(w.bytes()).unwrap(), delta);

        // Mixed delta + precondition.
        delta.remove("S", vec![9, 9]);
        encode_update_preconditioned(&mut w, &delta, Some(&[7]));
        let (back, pre) = parse_update_preconditioned(w.bytes()).unwrap();
        assert_eq!(back, delta);
        assert_eq!(pre, Some(vec![7]));

        // No precondition through the new parser: `None`, same delta.
        encode_update(&mut w, &delta);
        let (back, pre) = parse_update_preconditioned(w.bytes()).unwrap();
        assert_eq!(back, delta);
        assert_eq!(pre, None);

        // An empty epoch vector is still a *present* precondition (the
        // u32 count is on the wire), distinct from no tail at all.
        let mut insert_only = Delta::new();
        insert_only.insert("R", vec![5, 6]);
        encode_update_preconditioned(&mut w, &insert_only, Some(&[]));
        let (_, pre) = parse_update_preconditioned(w.bytes()).unwrap();
        assert_eq!(pre, Some(vec![]));
    }

    #[test]
    fn trailing_garbage_after_update_is_rejected() {
        let mut delta = Delta::new();
        delta.insert("R", vec![1, 2]);
        let mut w = PayloadWriter::new();
        encode_update_preconditioned(&mut w, &delta, Some(&[3]));
        let mut bytes = w.bytes().to_vec();
        bytes.push(0xEE);
        let err = parse_update_preconditioned(&bytes).unwrap_err();
        assert!(
            matches!(
                err,
                CqcError::Protocol {
                    code: code::BAD_FRAME,
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn serve_done_and_epoch_replies_round_trip() {
        let mut w = PayloadWriter::new();
        encode_serve_done(&mut w, 42, &[3, 1, 4]);
        assert_eq!(parse_serve_done(w.bytes()).unwrap(), (42, vec![3, 1, 4]));
        encode_epoch_reply(&mut w, &[9]);
        assert_eq!(parse_epoch_reply(w.bytes()).unwrap(), vec![9]);
    }

    #[test]
    fn errors_round_trip_typed() {
        let mut w = PayloadWriter::new();
        encode_error(&mut w, &CqcError::UnknownView("ghost".into()));
        let back = parse_error(w.bytes()).unwrap();
        assert!(matches!(back, CqcError::UnknownView(_)), "{back}");
        let deadline = CqcError::Protocol {
            code: code::DEADLINE,
            detail: "deadline elapsed".into(),
        };
        encode_error(&mut w, &deadline);
        let back = parse_error(w.bytes()).unwrap();
        assert!(
            matches!(
                back,
                CqcError::Protocol {
                    code: code::DEADLINE,
                    ..
                }
            ),
            "{back}"
        );
    }
}
