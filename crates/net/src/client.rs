//! The shard client: one connection to one [`crate::server::NetServer`].
//!
//! A [`ShardClient`] is deliberately dumb — a blocking request/response
//! (or request/stream) machine over a single TCP connection — with
//! exactly the resilience the ISSUE asks for:
//!
//! * **retry on connect failure** with exponential backoff capped at
//!   [`ClientConfig::backoff_cap`] (a restarting shard server is
//!   reachable again within a few attempts);
//! * **client-side deadlines** via socket read/write timeouts, so a
//!   stalled or dead server bounds the caller's wait;
//! * **poison on I/O failure**: a connection that errored is dropped and
//!   lazily re-established on the next request — never reused in an
//!   unknown framing state;
//! * **refusal handling**: a [`code::REFUSED`] backpressure reply is
//!   retried after a backoff, up to a small bound, before surfacing —
//!   each retry capped by the caller's [`Deadline`] and charged against
//!   the optional per-destination [`RetryBudget`], so a browning-out
//!   server is never hammered with free retries;
//! * **deadline propagation**: [`ShardClient::serve_with_sink_opts`]
//!   puts the caller's remaining budget and priority class on the wire
//!   as the optional serve tail, so the server can shed doomed work
//!   before enumeration. The tail is omitted entirely for the default
//!   (Interactive, unbounded) case — those requests stay byte-identical
//!   to the v1 wire format.
//!
//! [`RemoteShard`] wraps a client in a mutex to implement
//! [`BlockService`], which makes a remote server interchangeable with a
//! local [`cqc_engine::Engine`] behind the same trait object.

use cqc_common::error::Result;
use cqc_common::frame::{code, FrameKind, FrameReader, PayloadWriter, ServePriority, ServeTail};
use cqc_common::{AnswerBlock, AnswerSink, CqcError, Value};
use cqc_engine::BlockService;
use std::io::Write;
use std::net::{Shutdown, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::backoff::Backoff;
use crate::budget::RetryBudget;
use crate::protocol::{self, RegisterReq};
use crate::replica::Deadline;
use cqc_storage::{Delta, Epoch};

/// Tuning for a [`ShardClient`].
#[derive(Debug, Clone, Copy)]
pub struct ClientConfig {
    /// Connection attempts before giving up (≥ 1).
    pub connect_attempts: u32,
    /// First retry backoff; doubles per attempt.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// Socket read/write timeout — the client-side per-request deadline.
    /// `None` waits forever.
    pub io_timeout: Option<Duration>,
    /// How many times a [`code::REFUSED`] backpressure reply is retried
    /// (with backoff) before surfacing to the caller.
    pub refused_retries: u32,
    /// Seed for the deterministic backoff jitter. A fleet derives this
    /// per client via [`crate::backoff::lane_seed`] so clients that fail
    /// together do not retry in lockstep; equal seeds reproduce equal
    /// backoff sequences (no `rand` anywhere in `cqc-net`).
    pub jitter_seed: u64,
}

impl Default for ClientConfig {
    fn default() -> ClientConfig {
        ClientConfig {
            connect_attempts: 5,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(200),
            io_timeout: Some(Duration::from_secs(5)),
            refused_retries: 3,
            jitter_seed: 0,
        }
    }
}

impl ClientConfig {
    fn backoff(&self, attempt: u32) -> Duration {
        Backoff::new(self.backoff_base, self.backoff_cap, self.jitter_seed).delay(attempt)
    }
}

/// One blocking connection to a shard server (or a router — the wire is
/// the same either way).
#[derive(Debug)]
pub struct ShardClient {
    addr: String,
    config: ClientConfig,
    stream: Option<TcpStream>,
    frames: FrameReader,
    payload: PayloadWriter,
    bytes_out: u64,
    retry_budget: Option<Arc<RetryBudget>>,
}

impl ShardClient {
    /// A client for `addr` (connects lazily on first use).
    pub fn new(addr: impl Into<String>, config: ClientConfig) -> ShardClient {
        ShardClient {
            addr: addr.into(),
            config,
            stream: None,
            frames: FrameReader::new(),
            payload: PayloadWriter::new(),
            bytes_out: 0,
            retry_budget: None,
        }
    }

    /// The server address this client targets.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Attaches a (typically shared) retry budget: every REFUSED-retry
    /// this client takes spends a token, every successful serve earns a
    /// fraction back, and an empty bucket turns the retry into immediate
    /// backpressure. `None` (the default) retries on the config bound
    /// alone.
    pub fn set_retry_budget(&mut self, budget: Option<Arc<RetryBudget>>) {
        self.retry_budget = budget;
    }

    /// Rebinds the socket read/write timeout, applying it to the live
    /// connection immediately (if any). The failover layer uses this to
    /// cap each attempt's wait by the *remaining* request deadline, so a
    /// retry can never overrun what the caller budgeted.
    ///
    /// # Errors
    ///
    /// [`CqcError::Io`] if the live socket rejects the timeout.
    pub fn set_io_timeout(&mut self, timeout: Option<Duration>) -> Result<()> {
        self.config.io_timeout = timeout;
        if let Some(stream) = self.stream.as_ref() {
            stream.set_read_timeout(timeout)?;
            stream.set_write_timeout(timeout)?;
        }
        Ok(())
    }

    /// Wire traffic so far: `(bytes received, bytes sent)`, frame headers
    /// included.
    pub fn wire_bytes(&self) -> (u64, u64) {
        (self.frames.bytes_read(), self.bytes_out)
    }

    /// Connects if not already connected, retrying with capped
    /// exponential backoff.
    ///
    /// # Errors
    ///
    /// The last connect failure as [`CqcError::Io`].
    pub fn ensure_connected(&mut self) -> Result<()> {
        if self.stream.is_some() {
            return Ok(());
        }
        let attempts = self.config.connect_attempts.max(1);
        let mut last: Option<std::io::Error> = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                std::thread::sleep(self.config.backoff(attempt - 1));
            }
            match TcpStream::connect(&self.addr) {
                Ok(stream) => {
                    stream.set_nodelay(true).ok();
                    stream.set_read_timeout(self.config.io_timeout)?;
                    stream.set_write_timeout(self.config.io_timeout)?;
                    self.stream = Some(stream);
                    return Ok(());
                }
                Err(e) => last = Some(e),
            }
        }
        Err(CqcError::Io(format!(
            "connect to {} failed after {attempts} attempts: {}",
            self.addr,
            last.expect("at least one attempt")
        )))
    }

    /// Drops the connection; the next request reconnects. Called
    /// internally after any I/O failure (the framing state is unknown).
    pub fn poison(&mut self) {
        if let Some(s) = self.stream.take() {
            let _ = s.shutdown(Shutdown::Both);
        }
    }

    fn write_frame(&mut self, kind: FrameKind) -> Result<()> {
        let stream = self.stream.as_mut().expect("connected");
        cqc_common::frame::write_frame(stream, kind, self.payload.bytes())?;
        stream.flush()?;
        self.bytes_out += 6 + self.payload.bytes().len() as u64;
        Ok(())
    }

    fn read_frame(&mut self) -> Result<(FrameKind, &[u8])> {
        let stream = self.stream.as_mut().expect("connected");
        self.frames.read_frame(stream)
    }

    /// Sends the already-encoded payload as `kind` and reads one reply
    /// frame, poisoning the connection on any I/O failure.
    fn round_trip(&mut self, kind: FrameKind) -> Result<(FrameKind, Vec<u8>)> {
        self.ensure_connected()?;
        let outcome = (|| {
            self.write_frame(kind)?;
            let (k, body) = self.read_frame()?;
            Ok((k, body.to_vec()))
        })();
        if matches!(outcome, Err(CqcError::Io(_))) {
            self.poison();
        }
        outcome
    }

    fn expect_epochs(&mut self, kind: FrameKind, want: FrameKind) -> Result<Vec<Epoch>> {
        let (got, body) = self.round_trip(kind)?;
        match got {
            k if k == want => protocol::parse_epoch_reply(&body),
            FrameKind::Error => Err(protocol::parse_error(&body)?),
            other => Err(protocol::unexpected_frame("in reply", other)),
        }
    }

    /// Health probe: returns the server's epoch vector.
    ///
    /// # Errors
    ///
    /// Transport failures and remote errors, typed.
    pub fn health(&mut self) -> Result<Vec<Epoch>> {
        self.payload.start();
        self.expect_epochs(FrameKind::Health, FrameKind::HealthOk)
    }

    /// Registers a view; returns the epoch vector at registration.
    ///
    /// # Errors
    ///
    /// Transport failures and remote registration errors, typed.
    pub fn register(&mut self, req: &RegisterReq) -> Result<Vec<Epoch>> {
        protocol::encode_register(&mut self.payload, req);
        self.expect_epochs(FrameKind::Register, FrameKind::RegisterOk)
    }

    /// Applies a delta; returns the post-delta epoch vector.
    ///
    /// # Errors
    ///
    /// Transport failures and remote update errors, typed.
    pub fn update(&mut self, delta: &Delta) -> Result<Vec<Epoch>> {
        protocol::encode_update(&mut self.payload, delta);
        self.expect_epochs(FrameKind::Update, FrameKind::UpdateOk)
    }

    /// [`ShardClient::update`] preconditioned on the last-known epoch
    /// vector: the server applies the delta only if its version still
    /// equals `expected`, else replies with a typed
    /// [`code::EPOCH_MISMATCH`]. This is what makes retrying an update
    /// after an ambiguous I/O failure safe — a retry of a delta that
    /// already landed is rejected, never double-applied (probe
    /// [`ShardClient::health`]: a version exactly one bump past
    /// `expected` means the first attempt applied).
    ///
    /// # Errors
    ///
    /// Transport failures and remote update errors, typed;
    /// [`code::EPOCH_MISMATCH`] when the precondition no longer holds.
    pub fn update_preconditioned(
        &mut self,
        delta: &Delta,
        expected: &[Epoch],
    ) -> Result<Vec<Epoch>> {
        protocol::encode_update_preconditioned(&mut self.payload, delta, Some(expected));
        self.expect_epochs(FrameKind::Update, FrameKind::UpdateOk)
    }

    /// Serves one request, streaming every chunk into `block` (appended).
    /// Returns `(total answers, epoch vector observed at serve time)`.
    /// A [`code::REFUSED`] backpressure reply is retried with backoff.
    ///
    /// # Errors
    ///
    /// Transport failures and remote serve errors, typed; a connection
    /// that fails mid-stream is poisoned and the error surfaces as
    /// [`CqcError::Io`].
    pub fn serve_block(
        &mut self,
        view: &str,
        bound: &[Value],
        block: &mut AnswerBlock,
    ) -> Result<(u64, Vec<Epoch>)> {
        let mut sink = BlockAppend(block);
        self.serve_with_sink(view, bound, &mut sink)
    }

    /// [`ShardClient::serve_block`] with a caller-chosen sink. If the sink
    /// stops the stream early, the client hangs the connection up — the
    /// server's next chunk write fails and its enumeration stops
    /// cooperatively mid-block — and returns what was pushed.
    ///
    /// Tail-less on the wire (Interactive priority, unbounded budget):
    /// byte-identical to the v1 serve frame.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`ShardClient::serve_block`].
    pub fn serve_with_sink(
        &mut self,
        view: &str,
        bound: &[Value],
        sink: &mut dyn AnswerSink,
    ) -> Result<(u64, Vec<Epoch>)> {
        self.serve_with_sink_opts(
            view,
            bound,
            sink,
            ServePriority::Interactive,
            Deadline::within(None),
        )
    }

    /// [`ShardClient::serve_with_sink`] with an explicit priority class
    /// and deadline. A bounded deadline (or non-Interactive priority)
    /// travels as the serve frame's optional tail, re-measured at each
    /// attempt so the server always sees the budget that actually
    /// remains. REFUSED-backpressure retries are capped by the deadline
    /// and gated on the attached [`RetryBudget`] (if any); a drained
    /// budget surfaces the server's refusal instead of retrying.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`ShardClient::serve_block`], plus a typed
    /// [`code::DEADLINE`] when the budget expires between retries.
    pub fn serve_with_sink_opts(
        &mut self,
        view: &str,
        bound: &[Value],
        sink: &mut dyn AnswerSink,
        priority: ServePriority,
        deadline: Deadline,
    ) -> Result<(u64, Vec<Epoch>)> {
        let mut refusals = 0u32;
        loop {
            match self.serve_attempt(view, bound, sink, priority, deadline) {
                Err(CqcError::Protocol { code: c, detail })
                    if c == code::REFUSED && refusals < self.config.refused_retries =>
                {
                    deadline.check("before a refused-serve retry")?;
                    if let Some(budget) = &self.retry_budget {
                        if !budget.try_spend() {
                            // Backpressure, not failure: surface the
                            // server's refusal rather than amplify it.
                            return Err(CqcError::Protocol {
                                code: code::REFUSED,
                                detail: format!("retry budget exhausted; last refusal: {detail}"),
                            });
                        }
                    }
                    std::thread::sleep(deadline.cap(self.config.backoff(refusals)));
                    refusals += 1;
                }
                other => {
                    if other.is_ok() {
                        if let Some(budget) = &self.retry_budget {
                            budget.record_success();
                        }
                    }
                    return other;
                }
            }
        }
    }

    fn serve_attempt(
        &mut self,
        view: &str,
        bound: &[Value],
        sink: &mut dyn AnswerSink,
        priority: ServePriority,
        deadline: Deadline,
    ) -> Result<(u64, Vec<Epoch>)> {
        self.ensure_connected()?;
        let budget_ns = deadline
            .remaining()
            .map(|r| u64::try_from(r.as_nanos()).unwrap_or(u64::MAX - 1));
        if budget_ns.is_some() || priority != ServePriority::Interactive {
            let tail = ServeTail {
                priority,
                budget_ns,
            };
            protocol::encode_serve_tailed(&mut self.payload, view, bound, Some(&tail));
        } else {
            protocol::encode_serve(&mut self.payload, view, bound);
        }
        if let Err(e) = self.write_frame(FrameKind::Serve) {
            self.poison();
            return Err(e);
        }
        let mut scratch = AnswerBlock::new();
        let mut pushed = 0u64;
        let mut stopped = false;
        loop {
            let stream = self.stream.as_mut().expect("connected");
            let (kind, body) = match self.frames.read_frame(stream) {
                Ok(f) => f,
                Err(e) => {
                    self.poison();
                    return Err(e);
                }
            };
            match kind {
                FrameKind::Chunk => {
                    if stopped {
                        continue; // draining a stream the sink abandoned
                    }
                    scratch.reset();
                    cqc_common::frame::decode_chunk_into(body, &mut scratch)?;
                    for t in scratch.iter() {
                        pushed += 1;
                        if !sink.push(t) {
                            stopped = true;
                            break;
                        }
                    }
                    if stopped {
                        // Cooperative cancellation: hang up so the server's
                        // next flush fails and its enumeration early-stops.
                        self.poison();
                        return Ok((pushed, Vec::new()));
                    }
                }
                FrameKind::ServeDone => {
                    let (_total, epochs) = protocol::parse_serve_done(body)?;
                    return Ok((pushed, epochs));
                }
                FrameKind::Error => return Err(protocol::parse_error(body)?),
                other => {
                    self.poison();
                    return Err(protocol::unexpected_frame("in a serve stream", other));
                }
            }
        }
    }
}

/// Appends to an [`AnswerBlock`] without early stop.
struct BlockAppend<'b>(&'b mut AnswerBlock);

impl AnswerSink for BlockAppend<'_> {
    fn push(&mut self, tuple: &[Value]) -> bool {
        self.0.push(tuple)
    }
}

/// A remote shard server as a [`BlockService`]: lock, speak the wire,
/// return. With this, `Engine` (local), `ShardedEngine` (cores) and a
/// remote server (network) are interchangeable behind one trait object.
#[derive(Debug)]
pub struct RemoteShard {
    client: Mutex<ShardClient>,
}

impl RemoteShard {
    /// Wraps a client.
    pub fn new(client: ShardClient) -> RemoteShard {
        RemoteShard {
            client: Mutex::new(client),
        }
    }

    /// A client for `addr` with `config` (connects lazily).
    pub fn connect(addr: impl Into<String>, config: ClientConfig) -> RemoteShard {
        RemoteShard::new(ShardClient::new(addr, config))
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ShardClient> {
        self.client.lock().expect("shard client poisoned")
    }
}

impl BlockService for RemoteShard {
    fn register_view(
        &self,
        name: &str,
        query_text: &str,
        pattern: &str,
        strategy: &str,
    ) -> Result<Vec<Epoch>> {
        self.lock().register(&RegisterReq {
            name: name.into(),
            query: query_text.into(),
            pattern: pattern.into(),
            strategy: strategy.into(),
        })
    }

    fn serve_into(&self, view: &str, bound: &[Value], sink: &mut dyn AnswerSink) -> Result<usize> {
        let (pushed, _epochs) = self.lock().serve_with_sink(view, bound, sink)?;
        Ok(pushed as usize)
    }

    fn apply_update(&self, delta: &Delta) -> Result<Vec<Epoch>> {
        self.lock().update(delta)
    }

    fn version(&self) -> Vec<Epoch> {
        self.lock().health().unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn client_backoff_delegates_to_the_shared_schedule() {
        let config = ClientConfig {
            jitter_seed: 17,
            ..ClientConfig::default()
        };
        for attempt in 0..6u32 {
            assert_eq!(
                config.backoff(attempt),
                Backoff::new(config.backoff_base, config.backoff_cap, 17).delay(attempt)
            );
        }
    }
}
