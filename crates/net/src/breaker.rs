//! Per-replica circuit breakers: dead replicas stop eating deadline.
//!
//! Without a breaker, every request pays a connect-and-fail round on a
//! replica that has been down for minutes — budget the live replicas
//! could have used. The classic three-state machine fixes that:
//!
//! * **Closed** — requests flow; failures are counted against two
//!   thresholds (consecutive failures, and a rolling error rate over the
//!   last [`BreakerConfig::window`] outcomes). Tripping either opens the
//!   breaker.
//! * **Open** — requests are refused locally (no socket work at all)
//!   until [`BreakerConfig::cooldown`] elapses, then the breaker moves
//!   to half-open.
//! * **Half-open** — probe traffic is let through one request at a time;
//!   [`BreakerConfig::half_open_successes`] consecutive successes close
//!   the breaker, any failure re-opens it (with a fresh cooldown).
//!
//! Every method takes `now` explicitly, so the state machine is a pure
//! function of its inputs — the unit tests drive it with synthetic
//! clocks and the chaos harness reads the transition counters it keeps.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Thresholds and timings for a [`CircuitBreaker`].
#[derive(Debug, Clone, Copy)]
pub struct BreakerConfig {
    /// Consecutive failures that trip Closed → Open.
    pub consecutive_failures: u32,
    /// Rolling-window length, in outcomes (≤ 64; clamped).
    pub window: u32,
    /// Error rate over a *full* window that trips Closed → Open, in
    /// percent (e.g. 50 = half the window failed).
    pub error_rate_pct: u32,
    /// How long Open refuses before probing (Open → Half-open).
    pub cooldown: Duration,
    /// Consecutive half-open successes that close the breaker.
    pub half_open_successes: u32,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig {
            consecutive_failures: 3,
            window: 16,
            error_rate_pct: 50,
            cooldown: Duration::from_millis(500),
            half_open_successes: 2,
        }
    }
}

/// The breaker's observable state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Requests flow, failures are counted.
    Closed,
    /// Requests are refused locally until the cooldown elapses.
    Open,
    /// Probe traffic is being let through to test recovery.
    HalfOpen,
}

/// Counters for every state transition the breaker has made — the chaos
/// harness's evidence that the state machine actually cycled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BreakerTransitions {
    /// Closed (or half-open) → Open trips.
    pub opened: u64,
    /// Open → Half-open probe windows.
    pub half_opened: u64,
    /// Half-open → Closed recoveries.
    pub closed: u64,
}

#[derive(Debug)]
struct BreakerInner {
    state: BreakerState,
    /// Ring of recent outcomes, bit i set = failure (rolling window).
    outcomes: u64,
    outcome_count: u32,
    consecutive: u32,
    open_until: Option<Instant>,
    half_open_streak: u32,
    transitions: BreakerTransitions,
}

/// One replica's circuit breaker (see the module docs). Thread-safe; all
/// timing is injected via `now` parameters.
#[derive(Debug)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    inner: Mutex<BreakerInner>,
}

impl CircuitBreaker {
    /// A closed breaker with `config` thresholds.
    pub fn new(config: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker {
            config: BreakerConfig {
                window: config.window.clamp(1, 64),
                ..config
            },
            inner: Mutex::new(BreakerInner {
                state: BreakerState::Closed,
                outcomes: 0,
                outcome_count: 0,
                consecutive: 0,
                open_until: None,
                half_open_streak: 0,
                transitions: BreakerTransitions::default(),
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BreakerInner> {
        self.inner.lock().expect("breaker lock poisoned")
    }

    /// Whether a request may proceed at `now`. An open breaker whose
    /// cooldown has elapsed transitions to half-open here (and admits the
    /// probe).
    pub fn allow_at(&self, now: Instant) -> bool {
        let mut inner = self.lock();
        match inner.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                if inner.open_until.is_some_and(|until| now >= until) {
                    inner.state = BreakerState::HalfOpen;
                    inner.half_open_streak = 0;
                    inner.transitions.half_opened += 1;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// [`CircuitBreaker::allow_at`] on the wall clock.
    pub fn allow(&self) -> bool {
        self.allow_at(Instant::now())
    }

    /// Records a successful request outcome.
    pub fn record_success(&self) {
        let mut inner = self.lock();
        inner.push_outcome(false, self.config.window);
        inner.consecutive = 0;
        if inner.state == BreakerState::HalfOpen {
            inner.half_open_streak += 1;
            if inner.half_open_streak >= self.config.half_open_successes.max(1) {
                inner.state = BreakerState::Closed;
                inner.open_until = None;
                inner.outcomes = 0;
                inner.outcome_count = 0;
                inner.transitions.closed += 1;
            }
        }
    }

    /// Records a failed request outcome at `now`, tripping the breaker
    /// when a threshold is crossed (any half-open failure re-opens).
    pub fn record_failure_at(&self, now: Instant) {
        let mut inner = self.lock();
        inner.push_outcome(true, self.config.window);
        inner.consecutive += 1;
        let trip = match inner.state {
            BreakerState::Open => false, // already open (late failure report)
            BreakerState::HalfOpen => true,
            BreakerState::Closed => {
                inner.consecutive >= self.config.consecutive_failures.max(1)
                    || (inner.outcome_count >= self.config.window
                        && inner.failure_count() * 100
                            >= u64::from(self.config.error_rate_pct)
                                * u64::from(self.config.window))
            }
        };
        if trip {
            inner.state = BreakerState::Open;
            inner.open_until = Some(now + self.config.cooldown);
            inner.consecutive = 0;
            inner.transitions.opened += 1;
        }
    }

    /// [`CircuitBreaker::record_failure_at`] on the wall clock.
    pub fn record_failure(&self) {
        self.record_failure_at(Instant::now());
    }

    /// The current state (an elapsed cooldown shows as `Open` until the
    /// next [`CircuitBreaker::allow_at`] probes it).
    pub fn state(&self) -> BreakerState {
        self.lock().state
    }

    /// Cumulative transition counters.
    pub fn transitions(&self) -> BreakerTransitions {
        self.lock().transitions
    }
}

impl BreakerInner {
    fn push_outcome(&mut self, failed: bool, window: u32) {
        self.outcomes = (self.outcomes << 1) | u64::from(failed);
        if window < 64 {
            self.outcomes &= (1u64 << window) - 1;
        }
        self.outcome_count = (self.outcome_count + 1).min(window);
    }

    fn failure_count(&self) -> u64 {
        u64::from(self.outcomes.count_ones())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t0() -> Instant {
        Instant::now()
    }

    #[test]
    fn consecutive_failures_open_then_cooldown_half_opens() {
        let b = CircuitBreaker::new(BreakerConfig {
            consecutive_failures: 3,
            cooldown: Duration::from_millis(100),
            half_open_successes: 2,
            ..BreakerConfig::default()
        });
        let now = t0();
        assert!(b.allow_at(now));
        b.record_failure_at(now);
        b.record_failure_at(now);
        assert_eq!(b.state(), BreakerState::Closed);
        b.record_failure_at(now);
        assert_eq!(b.state(), BreakerState::Open);
        // Open refuses locally until the cooldown elapses…
        assert!(!b.allow_at(now + Duration::from_millis(50)));
        // …then half-opens and admits a probe.
        assert!(b.allow_at(now + Duration::from_millis(100)));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // Two probe successes close it.
        b.record_success();
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(
            b.transitions(),
            BreakerTransitions {
                opened: 1,
                half_opened: 1,
                closed: 1
            }
        );
    }

    #[test]
    fn half_open_failure_reopens_with_fresh_cooldown() {
        let b = CircuitBreaker::new(BreakerConfig {
            consecutive_failures: 1,
            cooldown: Duration::from_millis(100),
            ..BreakerConfig::default()
        });
        let now = t0();
        b.record_failure_at(now);
        assert!(b.allow_at(now + Duration::from_millis(100)));
        b.record_failure_at(now + Duration::from_millis(100));
        assert_eq!(b.state(), BreakerState::Open);
        // The new cooldown counts from the half-open failure.
        assert!(!b.allow_at(now + Duration::from_millis(150)));
        assert!(b.allow_at(now + Duration::from_millis(200)));
        assert_eq!(b.transitions().opened, 2);
    }

    #[test]
    fn rolling_error_rate_trips_without_a_consecutive_run() {
        let b = CircuitBreaker::new(BreakerConfig {
            consecutive_failures: 100, // out of reach: only the rate can trip
            window: 8,
            error_rate_pct: 50,
            ..BreakerConfig::default()
        });
        let now = t0();
        // Alternate success/failure: never 2 consecutive, but 50% of a
        // full window — trips exactly when the window fills.
        for i in 0..8 {
            if i % 2 == 0 {
                b.record_failure_at(now);
            } else {
                b.record_success();
            }
            if i < 7 {
                assert_eq!(b.state(), BreakerState::Closed, "trip before window full");
            }
        }
        b.record_failure_at(now);
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn successes_keep_the_breaker_closed() {
        let b = CircuitBreaker::new(BreakerConfig::default());
        let now = t0();
        for _ in 0..100 {
            assert!(b.allow_at(now));
            b.record_success();
        }
        b.record_failure_at(now);
        b.record_success();
        b.record_failure_at(now);
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.transitions(), BreakerTransitions::default());
    }
}
