//! `cqc-net` — the remote serving tier for the `cqc` workspace.
//!
//! The paper's regime (Deep & Koutris, PODS 2018) is build once, answer
//! many; this crate takes "many" off-box. It is std-only TCP — no
//! external dependencies — in three layers:
//!
//! * [`protocol`] — message encoding over the versioned, length-prefixed
//!   frame codec in [`cqc_common::frame`]. Answer streams travel as
//!   arity-strided [`cqc_common::AnswerBlock`] chunks that decode with one
//!   flat copy, and every failure maps onto the
//!   [`cqc_common::CqcError`] taxonomy via a stable numeric code table.
//! * [`server`] — [`server::NetServer`]: a thread-per-connection loop
//!   wrapping any [`cqc_engine::BlockService`] (an engine, a sharded
//!   engine, or a router). Per-request deadlines and client disconnects
//!   stop enumeration mid-block through the push-sink early-stop hook;
//!   an [`admission`] controller bounds concurrency with a small
//!   priority-aware wait queue, sheds adaptively (LIFO, Batch first)
//!   under sustained overload, and rejects requests whose wire-carried
//!   deadline budget is already spent before any enumeration work.
//! * [`admission`] / [`budget`] — the overload-robustness primitives:
//!   the server-side admission controller and the client-side
//!   per-destination retry budget that caps retries + hedges to a
//!   fraction of successful traffic.
//! * [`client`] / [`router`] — [`client::ShardClient`] (one connection,
//!   retry with capped backoff, client-side deadlines) and
//!   [`router::Router`]: the front door holding health-checked
//!   connections to N shard servers, fanning each request out
//!   shard-major, checking every reply's epoch vector against the last
//!   known version, and k-way merging the per-shard streams back into
//!   exact lexicographic order with [`cqc_common::BlockMerger`].
//!
//! The `cqe` binary gains `serve --addr` (shard server), `route`
//! (front-door router) and `bench --profile net` (loopback fleet vs
//! in-process serve) on top of the existing subcommands.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod backoff;
pub mod breaker;
pub mod budget;
pub mod chaos;
pub mod client;
pub mod protocol;
pub mod replica;
pub mod router;
pub mod server;

pub use admission::{AdmissionConfig, AdmissionController, AdmissionStats};
pub use backoff::{jittered_backoff, lane_seed, Backoff, FAILOVER_LANE};
pub use breaker::{BreakerConfig, BreakerState, BreakerTransitions, CircuitBreaker};
pub use budget::{RetryBudget, RetryBudgetConfig};
pub use chaos::{ChaosService, Fault};
pub use client::{ClientConfig, RemoteShard, ShardClient};
pub use replica::{Deadline, GroupStats, ReplicaGroup, RetryPolicy};
pub use router::{FleetStats, Router, ServeMode, ServeReport};
pub use server::{NetServer, NetServerConfig, ServerHandle};
