//! Scripted fault injection for the chaos harness.
//!
//! [`ChaosService`] wraps any [`BlockService`] and misbehaves on
//! command: stall before answering, refuse with typed backpressure, lie
//! about the epoch vector, or die mid-stream after N answers. Faults are
//! switched at runtime (the chaos schedule in `cqe bench --profile
//! chaos` flips them between requests), deterministic, and strictly
//! additive — [`Fault::None`] is bit-for-bit the wrapped service.
//!
//! Process-level kills are *not* simulated here: the harness really
//! shuts the `NetServer` down (and later respawns it on the same port
//! over the same engine), so connect failures, poisoned connections,
//! and replica rejoin all exercise the genuine code paths.

use cqc_common::error::Result;
use cqc_common::frame::code;
use cqc_common::{AnswerSink, CqcError, Value};
use cqc_engine::BlockService;
use cqc_storage::{Delta, Epoch};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// The injectable misbehaviors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Behave exactly like the wrapped service.
    None,
    /// Sleep this long before serving (a stalled replica; the client's
    /// socket timeout is expected to fire first).
    Stall(Duration),
    /// Refuse every serve with typed [`code::REFUSED`] backpressure.
    Refuse,
    /// Report an epoch vector uniformly bumped by this much — a replica
    /// serving at the wrong version, which the epoch check must catch.
    WrongEpoch(u64),
    /// Serve this many answers, then fail the stream with a typed I/O
    /// error (a replica dying mid-stream, prefix already on the wire).
    DieMidStream(usize),
    /// Sleep `factor × 10 ms` before serving, then answer correctly — a
    /// replica that is slow but alive (degraded disk, noisy neighbor).
    /// Unlike [`Fault::Stall`] the delay is sized to finish *inside* the
    /// client's socket timeout, so nothing errors: the request is just
    /// late, and only hedging (funded by the retry budget) keeps the
    /// caller's tail latency bounded.
    Slowdown(u32),
}

/// A [`BlockService`] wrapper that injects the current [`Fault`] into
/// serves and version reports (registration and updates pass through
/// unchanged — the chaos schedule targets the read path).
pub struct ChaosService {
    inner: Arc<dyn BlockService>,
    fault: Mutex<Fault>,
}

impl std::fmt::Debug for ChaosService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChaosService")
            .field("fault", &self.fault())
            .finish_non_exhaustive()
    }
}

impl ChaosService {
    /// Wraps `inner` with no fault active.
    pub fn new(inner: Arc<dyn BlockService>) -> ChaosService {
        ChaosService {
            inner,
            fault: Mutex::new(Fault::None),
        }
    }

    /// Switches the active fault (takes effect on the next request).
    pub fn set_fault(&self, fault: Fault) {
        *self.fault.lock().expect("fault lock poisoned") = fault;
    }

    /// The active fault.
    pub fn fault(&self) -> Fault {
        *self.fault.lock().expect("fault lock poisoned")
    }
}

/// Stops the enumeration after `budget` answers, then reports a typed
/// failure through the serve error path.
struct DieAfter<'s> {
    inner: &'s mut dyn AnswerSink,
    left: usize,
    tripped: bool,
}

impl AnswerSink for DieAfter<'_> {
    fn push(&mut self, tuple: &[Value]) -> bool {
        if self.left == 0 {
            self.tripped = true;
            return false;
        }
        self.left -= 1;
        self.inner.push(tuple)
    }
}

impl BlockService for ChaosService {
    fn register_view(
        &self,
        name: &str,
        query_text: &str,
        pattern: &str,
        strategy: &str,
    ) -> Result<Vec<Epoch>> {
        self.inner
            .register_view(name, query_text, pattern, strategy)
    }

    fn serve_into(&self, view: &str, bound: &[Value], sink: &mut dyn AnswerSink) -> Result<usize> {
        match self.fault() {
            Fault::None | Fault::WrongEpoch(_) => self.inner.serve_into(view, bound, sink),
            Fault::Stall(nap) => {
                std::thread::sleep(nap);
                self.inner.serve_into(view, bound, sink)
            }
            Fault::Slowdown(factor) => {
                std::thread::sleep(Duration::from_millis(10) * factor);
                self.inner.serve_into(view, bound, sink)
            }
            Fault::Refuse => Err(CqcError::Protocol {
                code: code::REFUSED,
                detail: "chaos: replica refusing".into(),
            }),
            Fault::DieMidStream(budget) => {
                let mut dying = DieAfter {
                    inner: sink,
                    left: budget,
                    tripped: false,
                };
                let n = self.inner.serve_into(view, bound, &mut dying)?;
                if dying.tripped {
                    return Err(CqcError::Io(format!(
                        "chaos: replica died mid-stream after {budget} answers"
                    )));
                }
                Ok(n)
            }
        }
    }

    fn apply_update(&self, delta: &Delta) -> Result<Vec<Epoch>> {
        self.inner.apply_update(delta)
    }

    fn version(&self) -> Vec<Epoch> {
        let mut v = self.inner.version();
        if let Fault::WrongEpoch(bump) = self.fault() {
            for e in &mut v {
                *e += bump;
            }
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqc_common::AnswerBlock;
    use cqc_engine::Engine;
    use cqc_storage::{Database, Relation};

    fn engine() -> Arc<dyn BlockService> {
        let mut db = Database::new();
        db.add(Relation::from_pairs("R", vec![(1, 2), (2, 3), (3, 4)]))
            .unwrap();
        let e = Engine::new(db);
        let svc: &dyn BlockService = &e;
        svc.register_view("all", "Q(x,y) :- R(x,y)", "ff", "auto")
            .unwrap();
        Arc::new(e)
    }

    #[test]
    fn faults_inject_and_clear() {
        let chaos = ChaosService::new(engine());
        let truth = chaos.version();
        let mut block = AnswerBlock::new();
        assert_eq!(chaos.serve_into("all", &[], &mut block).unwrap(), 3);

        chaos.set_fault(Fault::Refuse);
        let err = chaos.serve_into("all", &[], &mut block).unwrap_err();
        assert!(
            matches!(
                err,
                CqcError::Protocol {
                    code: code::REFUSED,
                    ..
                }
            ),
            "{err}"
        );

        chaos.set_fault(Fault::WrongEpoch(7));
        let lied: Vec<Epoch> = truth.iter().map(|e| e + 7).collect();
        assert_eq!(chaos.version(), lied);

        chaos.set_fault(Fault::DieMidStream(2));
        let mut partial = AnswerBlock::new();
        let err = chaos.serve_into("all", &[], &mut partial).unwrap_err();
        assert!(matches!(err, CqcError::Io(_)), "{err}");
        assert_eq!(partial.len(), 2, "prefix delivered before the death");

        chaos.set_fault(Fault::None);
        let mut clean = AnswerBlock::new();
        assert_eq!(chaos.serve_into("all", &[], &mut clean).unwrap(), 3);
        assert_eq!(chaos.version(), truth);
    }

    #[test]
    fn slowdown_is_late_but_correct() {
        let chaos = ChaosService::new(engine());
        chaos.set_fault(Fault::Slowdown(3));
        let started = std::time::Instant::now();
        let mut block = AnswerBlock::new();
        assert_eq!(chaos.serve_into("all", &[], &mut block).unwrap(), 3);
        assert!(
            started.elapsed() >= Duration::from_millis(30),
            "the slowdown must actually delay the serve"
        );
        assert_eq!(block.len(), 3, "slow, but every answer arrives");
    }
}
