//! The front-door router: N shard servers behind one [`BlockService`].
//!
//! The router is the network mirror of [`cqc_engine::ShardedEngine`]: the
//! same [`cqc_storage::PartitionSpec`] decides which relations are
//! hash-partitioned and which replicate, the same
//! [`cqc_engine::view_fans_out`] check decides whether a view fans out
//! across the fleet or is served by shard 0 alone, and the same
//! [`cqc_common::BlockMerger`] restores the exact global lexicographic
//! order from the per-shard streams. What the network adds:
//!
//! * **health-checked connections** — [`Router::connect`] probes every
//!   shard before the router is usable, and [`Router::health_check`]
//!   re-probes on demand;
//! * **per-request epoch consistency** — every serve reply carries the
//!   epoch vector the shard observed; the router compares it against the
//!   version it last saw from that shard and fails the request with a
//!   typed [`code::EPOCH_MISMATCH`] instead of silently merging streams
//!   from different database versions (an out-of-band writer is caught,
//!   not absorbed);
//! * **typed partial failure** — a shard that dies mid-stream surfaces as
//!   [`code::SHARD_FAILED`] naming the shard, never a hang (the client's
//!   socket timeouts bound every wait).
//!
//! Updates split per shard with [`cqc_storage::Partitioning::split_delta`]
//! — exactly the rows each shard owns, insertions and removals alike —
//! and only touched shards are contacted, so shard epochs advance
//! independently just as they do in the in-process sharded engine. A
//! mixed insert/delete delta applied through the router is
//! observationally identical to applying it to a local
//! [`cqc_engine::ShardedEngine`] (the loopback suite pins this).

use cqc_common::error::Result;
use cqc_common::frame::code;
use cqc_common::{AnswerBlock, AnswerSink, BlockMerger, CqcError, FastMap, Value};
use cqc_engine::{view_fans_out, BlockService};
use cqc_query::parser::parse_adorned;
use cqc_storage::{Delta, Epoch, PartitionSpec, Partitioning};
use std::sync::{Mutex, RwLock};

use crate::client::{ClientConfig, ShardClient};
use crate::protocol::RegisterReq;

/// The fan-out/merge router over a fleet of shard servers.
#[derive(Debug)]
pub struct Router {
    clients: Vec<Mutex<ShardClient>>,
    addrs: Vec<String>,
    partitioning: Partitioning,
    /// view name → fans out across shards (false: shard 0 serves alone).
    fanout: RwLock<FastMap<String, bool>>,
    /// Last known epoch vector per shard — the consistency expectation
    /// every serve reply is checked against.
    expected: RwLock<Vec<Vec<Epoch>>>,
}

impl Router {
    /// Connects to `addrs` under `spec` (one shard per address, in shard
    /// order — the spec's hash assignment must match how the fleet's
    /// sub-databases were split) and health-checks every shard.
    ///
    /// # Errors
    ///
    /// Partitioning validation failures, connect failures (after the
    /// client's retries), and failed health probes — the router refuses
    /// to start over a partially reachable fleet.
    pub fn connect(addrs: &[String], spec: PartitionSpec, config: ClientConfig) -> Result<Router> {
        if addrs.is_empty() {
            return Err(CqcError::Config(
                "a router needs at least one shard address".into(),
            ));
        }
        let partitioning = Partitioning::new(spec, addrs.len())?;
        let mut clients = Vec::with_capacity(addrs.len());
        let mut expected = Vec::with_capacity(addrs.len());
        for (i, addr) in addrs.iter().enumerate() {
            let mut client = ShardClient::new(addr.clone(), config);
            let epochs = client.health().map_err(|e| shard_error(i, addr, e))?;
            expected.push(epochs);
            clients.push(Mutex::new(client));
        }
        Ok(Router {
            clients,
            addrs: addrs.to_vec(),
            partitioning,
            fanout: RwLock::new(FastMap::default()),
            expected: RwLock::new(expected),
        })
    }

    /// Number of shards fronted.
    pub fn num_shards(&self) -> usize {
        self.clients.len()
    }

    /// The shard addresses, in shard order.
    pub fn addrs(&self) -> &[String] {
        &self.addrs
    }

    /// The partitioning in force.
    pub fn partitioning(&self) -> &Partitioning {
        &self.partitioning
    }

    /// Probes every shard and refreshes the expected epoch vectors (the
    /// recovery path after an out-of-band write raised
    /// [`code::EPOCH_MISMATCH`]). Returns the per-shard vectors.
    ///
    /// # Errors
    ///
    /// The first unreachable shard, typed with its index and address.
    pub fn health_check(&self) -> Result<Vec<Vec<Epoch>>> {
        let mut fresh = Vec::with_capacity(self.clients.len());
        for i in 0..self.clients.len() {
            let epochs = self
                .lock_shard(i)
                .health()
                .map_err(|e| shard_error(i, &self.addrs[i], e))?;
            fresh.push(epochs);
        }
        *self.expected.write().expect("expected lock poisoned") = fresh.clone();
        Ok(fresh)
    }

    /// Cumulative wire traffic across all shard connections:
    /// `(bytes received, bytes sent)`.
    pub fn wire_bytes(&self) -> (u64, u64) {
        let mut totals = (0u64, 0u64);
        for i in 0..self.clients.len() {
            let (r, w) = self.lock_shard(i).wire_bytes();
            totals.0 += r;
            totals.1 += w;
        }
        totals
    }

    fn lock_shard(&self, i: usize) -> std::sync::MutexGuard<'_, ShardClient> {
        self.clients[i].lock().expect("shard client poisoned")
    }

    fn routing(&self, view: &str) -> Result<bool> {
        self.fanout
            .read()
            .expect("fanout lock poisoned")
            .get(view)
            .copied()
            .ok_or_else(|| CqcError::UnknownView(view.to_string()))
    }

    /// Serves one request across the fleet: shard-major fan-out, epoch
    /// check per reply, k-way merge into `sink` in exact lexicographic
    /// order. Returns the merged answer count (early stop respected).
    ///
    /// # Errors
    ///
    /// Unknown view, [`code::EPOCH_MISMATCH`] on a version-skewed shard,
    /// [`code::SHARD_FAILED`] (or the shard's own typed error) on a
    /// partial failure.
    pub fn serve_merged(
        &self,
        view: &str,
        bound: &[Value],
        mut sink: &mut dyn AnswerSink,
    ) -> Result<usize> {
        let fans_out = self.routing(view)?;
        let shards = if fans_out { self.clients.len() } else { 1 };
        let expected = self
            .expected
            .read()
            .expect("expected lock poisoned")
            .clone();
        // Shard-major fan-out: each thread owns its shard's connection
        // and drains the full stream into a local block.
        let results: Vec<Result<AnswerBlock>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..shards)
                .map(|i| {
                    let expected = &expected;
                    scope.spawn(move || -> Result<AnswerBlock> {
                        let mut block = AnswerBlock::new();
                        let (_n, epochs) = self
                            .lock_shard(i)
                            .serve_block(view, bound, &mut block)
                            .map_err(|e| shard_error(i, &self.addrs[i], e))?;
                        if epochs != expected[i] {
                            return Err(CqcError::Protocol {
                                code: code::EPOCH_MISMATCH,
                                detail: format!(
                                    "shard {i} ({}) served at epochs {epochs:?}, expected \
                                     {:?}; re-sync with health_check()",
                                    self.addrs[i], expected[i]
                                ),
                            });
                        }
                        Ok(block)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard serve thread panicked"))
                .collect()
        });
        let mut blocks = Vec::with_capacity(shards);
        for r in results {
            blocks.push(r?);
        }
        let refs: Vec<&AnswerBlock> = blocks.iter().collect();
        Ok(BlockMerger::new().merge_into(&refs, &mut sink))
    }
}

/// Tags a shard-level failure with the shard index and address. Typed
/// remote errors keep their code (a remote deadline stays
/// [`code::DEADLINE`]); transport failures become
/// [`code::SHARD_FAILED`].
fn shard_error(i: usize, addr: &str, e: CqcError) -> CqcError {
    match e {
        CqcError::Io(m) => CqcError::Protocol {
            code: code::SHARD_FAILED,
            detail: format!("shard {i} ({addr}): {m}"),
        },
        CqcError::Protocol { code: c, detail } => CqcError::Protocol {
            code: c,
            detail: format!("shard {i} ({addr}): {detail}"),
        },
        other => other,
    }
}

impl BlockService for Router {
    fn register_view(
        &self,
        name: &str,
        query_text: &str,
        pattern: &str,
        strategy: &str,
    ) -> Result<Vec<Epoch>> {
        // Parse locally first: the fan-out decision needs the adorned
        // view, and a parse error should not reach the fleet.
        let view = parse_adorned(query_text, pattern)?;
        let fans_out = view_fans_out(self.partitioning.spec(), &view)?;
        let req = RegisterReq {
            name: name.into(),
            query: query_text.into(),
            pattern: pattern.into(),
            strategy: strategy.into(),
        };
        // Register on every shard (replicated relations live everywhere;
        // a later spec may route differently) — in parallel, build time
        // dominates.
        let results: Vec<Result<Vec<Epoch>>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.clients.len())
                .map(|i| {
                    let req = &req;
                    scope.spawn(move || {
                        self.lock_shard(i)
                            .register(req)
                            .map_err(|e| shard_error(i, &self.addrs[i], e))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard register thread panicked"))
                .collect()
        });
        let mut expected = self.expected.write().expect("expected lock poisoned");
        let mut flat = Vec::new();
        for (i, r) in results.into_iter().enumerate() {
            let epochs = r?;
            expected[i] = epochs.clone();
            flat.extend(epochs);
        }
        self.fanout
            .write()
            .expect("fanout lock poisoned")
            .insert(name.to_string(), fans_out);
        Ok(flat)
    }

    fn serve_into(&self, view: &str, bound: &[Value], sink: &mut dyn AnswerSink) -> Result<usize> {
        self.serve_merged(view, bound, sink)
    }

    fn apply_update(&self, delta: &Delta) -> Result<Vec<Epoch>> {
        let split = self.partitioning.split_delta(delta)?;
        let results: Vec<Option<Result<Vec<Epoch>>>> = std::thread::scope(|scope| {
            let handles: Vec<_> = split
                .iter()
                .enumerate()
                .map(|(i, sub)| {
                    if sub.is_empty() {
                        return None; // untouched shard: epoch unchanged
                    }
                    Some(scope.spawn(move || {
                        self.lock_shard(i)
                            .update(sub)
                            .map_err(|e| shard_error(i, &self.addrs[i], e))
                    }))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.map(|h| h.join().expect("shard update thread panicked")))
                .collect()
        });
        let mut expected = self.expected.write().expect("expected lock poisoned");
        for (i, r) in results.into_iter().enumerate() {
            if let Some(r) = r {
                expected[i] = r?;
            }
        }
        Ok(expected.iter().flatten().copied().collect())
    }

    fn version(&self) -> Vec<Epoch> {
        self.expected
            .read()
            .expect("expected lock poisoned")
            .iter()
            .flatten()
            .copied()
            .collect()
    }
}
