//! The front-door router: N shard *replica groups* behind one
//! [`BlockService`].
//!
//! The router is the network mirror of [`cqc_engine::ShardedEngine`]: the
//! same [`cqc_storage::PartitionSpec`] decides which relations are
//! hash-partitioned and which replicate, the same
//! [`cqc_engine::view_fans_out`] check decides whether a view fans out
//! across the fleet or is served by shard 0 alone, and the same
//! [`cqc_common::BlockMerger`] restores the exact global lexicographic
//! order from the per-shard streams. What the network adds:
//!
//! * **replica groups** — every shard is fronted by a
//!   [`ReplicaGroup`] of R independent servers; registration fans out to
//!   all replicas, serves pick one healthy replica per shard and fail
//!   over on faults under the group's [`RetryPolicy`] (budgeted
//!   attempts, capped jittered backoff, per-request deadline accounting,
//!   optional hedged reads, per-replica circuit breakers);
//! * **health-checked connections** — [`Router::connect_replicated`]
//!   probes every replica of every shard before the router is usable and
//!   reports *every* unreachable address in one error (one look tells an
//!   operator the full extent of an outage); [`Router::health_check`]
//!   re-probes on demand and tolerates dead replicas as long as each
//!   shard keeps at least one;
//! * **per-request epoch consistency, per replica** — every serve reply
//!   carries the epoch vector the replica observed; a reply that
//!   disagrees with the group's expectation marks that *replica* stale
//!   (it is skipped, another is tried) instead of poisoning the request,
//!   and only if no replica serves at the expected version does a typed
//!   [`code::EPOCH_MISMATCH`] surface;
//! * **typed partial failure and graceful degradation** — in the default
//!   [`ServeMode::Strict`] a shard whose whole replica group is down
//!   fails the request with [`code::SHARD_FAILED`] naming the shard;
//!   opting into [`ServeMode::DegradedOk`] returns the surviving shards'
//!   merged answers instead, with an explicit per-shard
//!   [`Coverage`] bitmap and a typed [`code::DEGRADED`] indication — a
//!   partial result can never impersonate a complete one.
//!
//! Updates split per shard with [`cqc_storage::Partitioning::split_delta`]
//! and fan out to every replica of each touched shard, preconditioned on
//! the router's last-known epoch vector so a retried delta after an
//! ambiguous I/O failure can never double-apply (see
//! [`ReplicaGroup::update_preconditioned`]). A replica that misses an
//! update becomes stale and is skipped by the per-replica epoch check
//! until it is re-synced — degraded redundancy, never wrong answers.

use cqc_common::error::Result;
use cqc_common::frame::{code, ServePriority};
use cqc_common::{AnswerBlock, AnswerSink, BlockMerger, Coverage, CqcError, FastMap, Value};
use cqc_engine::{view_fans_out, BlockService};
use cqc_query::parser::parse_adorned;
use cqc_storage::{Delta, Epoch, PartitionSpec, Partitioning};
use std::sync::{Arc, RwLock};

use crate::breaker::{BreakerConfig, BreakerTransitions};
use crate::client::ClientConfig;
use crate::protocol::RegisterReq;
use crate::replica::{Deadline, GroupStats, ReplicaGroup, RetryPolicy};

/// How a fan-out serve treats a shard with no serving replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ServeMode {
    /// Fail the whole request (exact answers or a typed error).
    #[default]
    Strict,
    /// Answer from the shards that survive, with an explicit coverage
    /// bitmap and a typed [`code::DEGRADED`] indication on the report.
    DegradedOk,
}

/// The outcome of one fan-out serve: what was merged, which shards
/// contributed, and what failed.
#[derive(Debug)]
pub struct ServeReport {
    /// Answers merged into the sink.
    pub answers: usize,
    /// Which shards' streams are in the merge (full ⇔ exact).
    pub coverage: Coverage,
    /// Per-shard failures (empty when `coverage.is_full()`).
    pub failures: Vec<(usize, CqcError)>,
}

impl ServeReport {
    /// `true` when the result is partial (some shard did not contribute).
    pub fn is_degraded(&self) -> bool {
        !self.coverage.is_full()
    }

    /// The typed [`code::DEGRADED`] error describing this partial result
    /// (`None` when the result is exact) — what a strict caller would
    /// have seen, and what a degraded-tolerant caller logs.
    pub fn degraded_error(&self) -> Option<CqcError> {
        if !self.is_degraded() {
            return None;
        }
        Some(CqcError::Protocol {
            code: code::DEGRADED,
            detail: format!(
                "partial result: coverage {} (missing shards {:?})",
                self.coverage,
                self.coverage.missing()
            ),
        })
    }
}

/// Fleet-wide fault counters: the sum of every group's [`GroupStats`]
/// and breaker transitions.
#[derive(Debug, Clone, Copy, Default)]
pub struct FleetStats {
    /// Summed per-group serve/update fault counters.
    pub groups: GroupStats,
    /// Summed per-replica breaker transitions.
    pub breakers: BreakerTransitions,
}

/// The fan-out/merge router over a fleet of shard replica groups.
#[derive(Debug)]
pub struct Router {
    groups: Vec<Arc<ReplicaGroup>>,
    partitioning: Partitioning,
    policy: RetryPolicy,
    /// view name → fans out across shards (false: shard 0 serves alone).
    fanout: RwLock<FastMap<String, bool>>,
    /// Last known epoch vector per shard — the consistency expectation
    /// every serve reply is checked against.
    expected: RwLock<Vec<Vec<Epoch>>>,
}

impl Router {
    /// Connects to `addrs` under `spec` (one shard per address, in shard
    /// order — the spec's hash assignment must match how the fleet's
    /// sub-databases were split) and health-checks every shard. The
    /// unreplicated (R = 1) special case of
    /// [`Router::connect_replicated`].
    ///
    /// # Errors
    ///
    /// Partitioning validation failures, and one error naming *every*
    /// unreachable address — the router refuses to start over a
    /// partially reachable fleet.
    pub fn connect(addrs: &[String], spec: PartitionSpec, config: ClientConfig) -> Result<Router> {
        let groups: Vec<Vec<String>> = addrs.iter().map(|a| vec![a.clone()]).collect();
        Router::connect_replicated(
            &groups,
            spec,
            config,
            BreakerConfig::default(),
            RetryPolicy::default(),
        )
    }

    /// Connects to a replicated fleet: `groups[s]` lists shard `s`'s
    /// replica addresses (primary first). Probes every replica of every
    /// shard up front; *all* unreachable addresses are reported in one
    /// error, so a multi-shard outage is discovered in one connect
    /// attempt rather than serially.
    ///
    /// # Errors
    ///
    /// Partitioning validation failures, empty groups, and failed health
    /// probes (all of them, in one [`CqcError::Io`]).
    pub fn connect_replicated(
        groups: &[Vec<String>],
        spec: PartitionSpec,
        config: ClientConfig,
        breaker: BreakerConfig,
        policy: RetryPolicy,
    ) -> Result<Router> {
        if groups.is_empty() {
            return Err(CqcError::Config(
                "a router needs at least one shard address".into(),
            ));
        }
        if let Some(i) = groups.iter().position(Vec::is_empty) {
            return Err(CqcError::Config(format!(
                "shard {i} has no replica addresses"
            )));
        }
        let partitioning = Partitioning::new(spec, groups.len())?;
        let built: Vec<Arc<ReplicaGroup>> = groups
            .iter()
            .enumerate()
            .map(|(s, addrs)| Arc::new(ReplicaGroup::new(s, addrs, config, breaker, policy)))
            .collect();
        // Probe the whole fleet before reporting anything: the point is
        // one error that names every unreachable replica.
        let mut expected = Vec::with_capacity(built.len());
        let mut unreachable: Vec<String> = Vec::new();
        for group in &built {
            let mut vector: Option<Vec<Epoch>> = None;
            for (addr, outcome) in group.probe() {
                match outcome {
                    Ok(epochs) => vector = Some(max_vector(vector.take(), epochs)),
                    Err(e) => {
                        unreachable.push(format!("shard {} ({addr}): {e}", group.shard()));
                    }
                }
            }
            expected.push(vector.unwrap_or_default());
        }
        if !unreachable.is_empty() {
            return Err(CqcError::Io(format!(
                "{} unreachable replica(s): {}",
                unreachable.len(),
                unreachable.join("; ")
            )));
        }
        Ok(Router {
            groups: built,
            partitioning,
            policy,
            fanout: RwLock::new(FastMap::default()),
            expected: RwLock::new(expected),
        })
    }

    /// Number of shards fronted.
    pub fn num_shards(&self) -> usize {
        self.groups.len()
    }

    /// The primary (first-replica) address per shard, in shard order.
    pub fn addrs(&self) -> Vec<String> {
        self.groups.iter().map(|g| g.addrs().remove(0)).collect()
    }

    /// Every replica address, `groups[s][r]` layout.
    pub fn replica_addrs(&self) -> Vec<Vec<String>> {
        self.groups.iter().map(|g| g.addrs()).collect()
    }

    /// The partitioning in force.
    pub fn partitioning(&self) -> &Partitioning {
        &self.partitioning
    }

    /// The shard replica groups, in shard order.
    pub fn groups(&self) -> &[Arc<ReplicaGroup>] {
        &self.groups
    }

    /// Fleet-wide fault counters (summed over groups and replicas).
    pub fn fleet_stats(&self) -> FleetStats {
        let mut stats = FleetStats::default();
        for g in &self.groups {
            let s = g.stats();
            stats.groups.failovers += s.failovers;
            stats.groups.stale_skips += s.stale_skips;
            stats.groups.prefix_resumes += s.prefix_resumes;
            stats.groups.hedges += s.hedges;
            stats.groups.hedge_wins += s.hedge_wins;
            stats.groups.update_failures += s.update_failures;
            stats.groups.budget_spent += s.budget_spent;
            stats.groups.budget_denied += s.budget_denied;
            let t = g.breaker_transitions();
            stats.breakers.opened += t.opened;
            stats.breakers.half_opened += t.half_opened;
            stats.breakers.closed += t.closed;
        }
        stats
    }

    /// Probes every replica and refreshes the expected epoch vectors
    /// (the recovery path after an out-of-band write raised
    /// [`code::EPOCH_MISMATCH`], and the rejoin path after a replica
    /// revives). A shard's expectation becomes the elementwise max over
    /// its reachable replicas — lagging replicas stay stale and skipped.
    /// Returns the per-shard vectors.
    ///
    /// # Errors
    ///
    /// [`code::SHARD_FAILED`] only when a shard has *no* reachable
    /// replica, naming every dead address of that shard.
    pub fn health_check(&self) -> Result<Vec<Vec<Epoch>>> {
        let mut fresh = Vec::with_capacity(self.groups.len());
        for group in &self.groups {
            let mut vector: Option<Vec<Epoch>> = None;
            let mut dead: Vec<String> = Vec::new();
            for (addr, outcome) in group.probe() {
                match outcome {
                    Ok(epochs) => vector = Some(max_vector(vector.take(), epochs)),
                    Err(e) => dead.push(format!("{addr}: {e}")),
                }
            }
            match vector {
                Some(v) => fresh.push(v),
                None => {
                    return Err(CqcError::Protocol {
                        code: code::SHARD_FAILED,
                        detail: format!(
                            "shard {} has no reachable replica ({})",
                            group.shard(),
                            dead.join("; ")
                        ),
                    });
                }
            }
        }
        *self.expected.write().expect("expected lock poisoned") = fresh.clone();
        Ok(fresh)
    }

    /// Cumulative wire traffic across all replica connections:
    /// `(bytes received, bytes sent)`.
    pub fn wire_bytes(&self) -> (u64, u64) {
        let mut totals = (0u64, 0u64);
        for g in &self.groups {
            let (r, w) = g.wire_bytes();
            totals.0 += r;
            totals.1 += w;
        }
        totals
    }

    fn routing(&self, view: &str) -> Result<bool> {
        self.fanout
            .read()
            .expect("fanout lock poisoned")
            .get(view)
            .copied()
            .ok_or_else(|| CqcError::UnknownView(view.to_string()))
    }

    /// Serves one request across the fleet in [`ServeMode::Strict`]:
    /// shard-major fan-out with per-shard replica failover, epoch check
    /// per reply, k-way merge into `sink` in exact lexicographic order.
    /// Returns the merged answer count (early stop respected).
    ///
    /// # Errors
    ///
    /// Unknown view, [`code::EPOCH_MISMATCH`] when no replica of a shard
    /// serves at the expected version, [`code::SHARD_FAILED`] (or the
    /// shard's own typed error) when a whole replica group is down, and
    /// [`code::DEADLINE`] when the request budget runs out.
    pub fn serve_merged(
        &self,
        view: &str,
        bound: &[Value],
        sink: &mut dyn AnswerSink,
    ) -> Result<usize> {
        let report = self.serve_with_mode(view, bound, sink, ServeMode::Strict)?;
        Ok(report.answers)
    }

    /// [`Router::serve_merged`] with an explicit [`ServeMode`]. In
    /// [`ServeMode::DegradedOk`] a shard whose replica group cannot
    /// serve is *dropped from the merge* instead of failing the request:
    /// the report's coverage bitmap says exactly which shards
    /// contributed, [`ServeReport::degraded_error`] carries the typed
    /// [`code::DEGRADED`] indication, and the merged stream is still in
    /// exact lexicographic order over the covered shards.
    ///
    /// # Errors
    ///
    /// In strict mode, any shard failure (see [`Router::serve_merged`]).
    /// In degraded mode, only request-level failures (unknown view) —
    /// shard failures land in the report.
    pub fn serve_with_mode(
        &self,
        view: &str,
        bound: &[Value],
        sink: &mut dyn AnswerSink,
        mode: ServeMode,
    ) -> Result<ServeReport> {
        self.serve_with_opts(view, bound, sink, mode, ServePriority::Interactive, None)
    }

    /// [`Router::serve_with_mode`] with an explicit priority class and
    /// an optional caller deadline. The *remaining* budget and the class
    /// travel on the wire with every per-shard attempt, failover, and
    /// hedge, so each shard server can shed doomed or low-priority work
    /// before enumerating (a `None` deadline falls back to the router's
    /// [`RetryPolicy::request_deadline`]).
    ///
    /// # Errors
    ///
    /// As [`Router::serve_with_mode`].
    pub fn serve_with_opts(
        &self,
        view: &str,
        bound: &[Value],
        mut sink: &mut dyn AnswerSink,
        mode: ServeMode,
        priority: ServePriority,
        deadline: Option<Deadline>,
    ) -> Result<ServeReport> {
        let fans_out = self.routing(view)?;
        let shards = if fans_out { self.groups.len() } else { 1 };
        let expected = self
            .expected
            .read()
            .expect("expected lock poisoned")
            .clone();
        let deadline = deadline.unwrap_or_else(|| Deadline::within(self.policy.request_deadline));
        // Shard-major fan-out: each thread drives its shard's replica
        // group (failover and all) into a local block.
        let results: Vec<Result<AnswerBlock>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..shards)
                .map(|i| {
                    let expected = &expected;
                    let group = &self.groups[i];
                    scope.spawn(move || -> Result<AnswerBlock> {
                        let mut block = AnswerBlock::new();
                        group
                            .serve_into_block_prioritized(
                                view,
                                bound,
                                &expected[i],
                                priority,
                                deadline,
                                &mut block,
                            )
                            .map_err(|e| shard_error(i, e))?;
                        Ok(block)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard serve thread panicked"))
                .collect()
        });
        let mut coverage = Coverage::empty(shards);
        let mut failures = Vec::new();
        let mut blocks = Vec::with_capacity(shards);
        for (i, r) in results.into_iter().enumerate() {
            match r {
                Ok(block) => {
                    coverage.mark(i);
                    blocks.push(block);
                }
                Err(e) => match mode {
                    ServeMode::Strict => return Err(e),
                    ServeMode::DegradedOk => failures.push((i, e)),
                },
            }
        }
        let refs: Vec<&AnswerBlock> = blocks.iter().collect();
        let answers = BlockMerger::new().merge_into(&refs, &mut sink);
        Ok(ServeReport {
            answers,
            coverage,
            failures,
        })
    }
}

/// Elementwise max of two epoch vectors (the freshest state any replica
/// of a shard has reached); adopts the longer vector on length skew.
fn max_vector(a: Option<Vec<Epoch>>, b: Vec<Epoch>) -> Vec<Epoch> {
    match a {
        None => b,
        Some(mut a) => {
            if a.len() != b.len() {
                return if b.len() > a.len() { b } else { a };
            }
            for (x, y) in a.iter_mut().zip(b) {
                *x = (*x).max(y);
            }
            a
        }
    }
}

/// Tags a shard-level failure with the shard index. Typed remote errors
/// keep their code (a remote deadline stays [`code::DEADLINE`]);
/// transport failures become [`code::SHARD_FAILED`]. Replica addresses
/// are already in the detail (tagged by the group).
fn shard_error(i: usize, e: CqcError) -> CqcError {
    match e {
        CqcError::Io(m) => CqcError::Protocol {
            code: code::SHARD_FAILED,
            detail: format!("shard {i}: {m}"),
        },
        CqcError::Protocol { code: c, detail } => CqcError::Protocol {
            code: c,
            detail: format!("shard {i}: {detail}"),
        },
        other => other,
    }
}

impl BlockService for Router {
    fn register_view(
        &self,
        name: &str,
        query_text: &str,
        pattern: &str,
        strategy: &str,
    ) -> Result<Vec<Epoch>> {
        // Parse locally first: the fan-out decision needs the adorned
        // view, and a parse error should not reach the fleet.
        let view = parse_adorned(query_text, pattern)?;
        let fans_out = view_fans_out(self.partitioning.spec(), &view)?;
        let req = RegisterReq {
            name: name.into(),
            query: query_text.into(),
            pattern: pattern.into(),
            strategy: strategy.into(),
        };
        // Register on every replica of every shard (a replica that
        // misses a registration could never serve or fail over) — in
        // parallel across shards, build time dominates.
        let results: Vec<Result<Vec<Epoch>>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .groups
                .iter()
                .enumerate()
                .map(|(i, group)| {
                    let req = &req;
                    scope.spawn(move || group.register(req).map_err(|e| shard_error(i, e)))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard register thread panicked"))
                .collect()
        });
        let mut expected = self.expected.write().expect("expected lock poisoned");
        let mut flat = Vec::new();
        for (i, r) in results.into_iter().enumerate() {
            let epochs = r?;
            expected[i] = epochs.clone();
            flat.extend(epochs);
        }
        self.fanout
            .write()
            .expect("fanout lock poisoned")
            .insert(name.to_string(), fans_out);
        Ok(flat)
    }

    fn serve_into(&self, view: &str, bound: &[Value], sink: &mut dyn AnswerSink) -> Result<usize> {
        self.serve_merged(view, bound, sink)
    }

    fn apply_update(&self, delta: &Delta) -> Result<Vec<Epoch>> {
        let split = self.partitioning.split_delta(delta)?;
        // Hold the write lock across the fan-out: updates serialize at
        // the router (one writer at a time), which is what makes the
        // per-shard precondition an exact idempotency token.
        let mut expected = self.expected.write().expect("expected lock poisoned");
        let snapshot = expected.clone();
        let results: Vec<Option<Result<Vec<Epoch>>>> = std::thread::scope(|scope| {
            let handles: Vec<_> = split
                .iter()
                .enumerate()
                .map(|(i, sub)| {
                    if sub.is_empty() {
                        return None; // untouched shard: epoch unchanged
                    }
                    let group = &self.groups[i];
                    let want = &snapshot[i];
                    Some(scope.spawn(move || {
                        group
                            .update_preconditioned(sub, want)
                            .map_err(|e| shard_error(i, e))
                    }))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.map(|h| h.join().expect("shard update thread panicked")))
                .collect()
        });
        for (i, r) in results.into_iter().enumerate() {
            if let Some(r) = r {
                expected[i] = r?;
            }
        }
        Ok(expected.iter().flatten().copied().collect())
    }

    fn version(&self) -> Vec<Epoch> {
        self.expected
            .read()
            .expect("expected lock poisoned")
            .iter()
            .flatten()
            .copied()
            .collect()
    }
}
