//! Priority-aware admission control for a shard server.
//!
//! The serving guarantee this repo is built around — bounded delay per
//! answer — only means something while offered load is below capacity.
//! This module is what keeps the guarantee *graceful* past that point:
//! instead of the old flat in-flight counter (admit until `max`, refuse
//! flatly after), a server runs every serve request through an
//! [`AdmissionController`]:
//!
//! * up to `max_inflight` serves run concurrently;
//! * past that, requests wait in a **bounded queue** (`queue_depth`);
//! * when the queue overflows, the controller sheds **adaptively,
//!   LIFO-first**: the victim is the lowest-priority, *oldest* waiter —
//!   under sustained overload the oldest queued request is the one whose
//!   caller has waited longest and is most likely to have given up, so
//!   serving the newest arrivals first ("adaptive LIFO") converts a
//!   little fairness into a lot of tail latency for the requests that
//!   still matter; a newcomer that outranks the victim takes its place,
//!   otherwise the newcomer itself is shed;
//! * free slots go to the **highest-priority, newest** waiter
//!   (the admission-side mirror of the same policy);
//! * a request whose deadline is already gone — on arrival or while
//!   queued — is shed with a typed
//!   [`DEADLINE`](cqc_common::frame::code::DEADLINE) before any
//!   enumeration work;
//! * when saturation persists for `brownout_after`, the controller
//!   enters **brownout** and sheds [`ServePriority::Batch`] on arrival
//!   with a typed [`REFUSED`](cqc_common::frame::code::REFUSED), keeping
//!   the queue for Interactive (and Internal) traffic.
//!
//! Health and update frames never pass through the controller at all —
//! they are handled inline on their connection thread, so a saturated
//! serve queue cannot starve liveness probes or writes.
//!
//! Shedding is accounted per priority class and per reason
//! ([`AdmissionStats`]); the mixed-workload bench gates on those
//! counters.

use cqc_common::frame::{code, ServePriority};
use cqc_common::{CqcError, FastMap, Result};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Tuning for one [`AdmissionController`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Serve requests allowed to run concurrently.
    pub max_inflight: usize,
    /// Bounded wait-queue depth behind the in-flight slots. Zero means
    /// "no queue": anything past `max_inflight` is shed immediately.
    pub queue_depth: usize,
    /// How long saturation (every in-flight slot busy) must persist
    /// before brownout engages and Batch traffic is shed on arrival.
    pub brownout_after: Duration,
}

impl Default for AdmissionConfig {
    fn default() -> AdmissionConfig {
        AdmissionConfig {
            max_inflight: 64,
            queue_depth: 16,
            brownout_after: Duration::from_secs(1),
        }
    }
}

/// Why a request was shed (the reason axis of [`AdmissionStats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ShedReason {
    /// Deadline budget gone — on arrival, while queued, or because the
    /// measured serve cost cannot fit the remaining budget.
    Expired,
    /// Bounded queue overflowed and this request was the weakest.
    QueueFull,
    /// Sustained overload: Batch shed on arrival.
    Brownout,
}

/// Counters the controller keeps, snapshotted by
/// [`AdmissionController::stats`]. `admitted + shed-by-class` is the
/// total number of serve attempts that reached the server — the
/// denominator of the bench harness's retry-amplification factor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Requests granted a serve slot (directly or from the queue).
    pub admitted: u64,
    /// Sheds of Interactive-class requests.
    pub shed_interactive: u64,
    /// Sheds of Batch-class requests.
    pub shed_batch: u64,
    /// Sheds of Internal-class requests.
    pub shed_internal: u64,
    /// Sheds because the deadline budget was spent (arrival, queued, or
    /// cost-based).
    pub shed_expired: u64,
    /// Sheds because the bounded queue overflowed.
    pub shed_queue_full: u64,
    /// Sheds because brownout was in effect (Batch on arrival).
    pub shed_brownout: u64,
    /// Times the controller transitioned into brownout.
    pub brownouts: u64,
}

impl AdmissionStats {
    /// Total sheds across every class.
    pub fn shed_total(&self) -> u64 {
        self.shed_interactive + self.shed_batch + self.shed_internal
    }

    /// Total serve attempts seen (admitted plus shed).
    pub fn attempts(&self) -> u64 {
        self.admitted + self.shed_total()
    }
}

/// One queued request. `seq` orders arrivals (monotonic); the shed
/// victim is the *minimum* `(shed_rank, seq)` — lowest class, oldest —
/// and the next admission is the *maximum* — highest class, newest.
#[derive(Debug, Clone, Copy)]
struct Waiter {
    ticket: u64,
    priority: ServePriority,
    seq: u64,
}

impl Waiter {
    fn key(&self) -> (u8, u64) {
        (self.priority.shed_rank(), self.seq)
    }
}

#[derive(Debug, Default)]
struct State {
    inflight: usize,
    queue: Vec<Waiter>,
    /// Tickets with a verdict: `true` = admitted (the slot is already
    /// counted in `inflight`), `false` = shed by eviction.
    decided: FastMap<u64, bool>,
    next_ticket: u64,
    next_seq: u64,
    /// When saturation began, if every slot is currently busy.
    saturated_since: Option<Instant>,
    /// Whether the current saturation episode already counted a
    /// brownout transition.
    in_brownout: bool,
    stats: AdmissionStats,
}

/// The admission controller a [`crate::NetServer`] runs every serve
/// request through. See the module docs for the policy.
#[derive(Debug)]
pub struct AdmissionController {
    config: AdmissionConfig,
    state: Mutex<State>,
    wakeup: Condvar,
}

/// An admitted serve slot; dropping it releases the slot and hands it
/// to the best queued waiter.
#[derive(Debug)]
pub struct Permit<'a> {
    ctl: &'a AdmissionController,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.ctl.release();
    }
}

impl AdmissionController {
    /// A controller with the given limits.
    pub fn new(config: AdmissionConfig) -> AdmissionController {
        AdmissionController {
            config,
            state: Mutex::new(State::default()),
            wakeup: Condvar::new(),
        }
    }

    /// The configuration this controller enforces.
    pub fn config(&self) -> AdmissionConfig {
        self.config
    }

    /// A snapshot of the admission counters.
    pub fn stats(&self) -> AdmissionStats {
        self.state.lock().expect("admission lock").stats
    }

    /// Runs one request through admission: returns a [`Permit`] once a
    /// serve slot is granted, or the typed shed error —
    /// [`code::DEADLINE`] when the budget is spent, [`code::REFUSED`]
    /// for queue overflow and brownout. Blocks while queued, but never
    /// past `deadline`.
    ///
    /// # Errors
    ///
    /// [`CqcError::Protocol`] with [`code::DEADLINE`] or
    /// [`code::REFUSED`] as above.
    pub fn admit(&self, priority: ServePriority, deadline: Option<Instant>) -> Result<Permit<'_>> {
        let mut st = self.state.lock().expect("admission lock");
        let now = Instant::now();
        if deadline.is_some_and(|d| d <= now) {
            st.shed(priority, ShedReason::Expired);
            return Err(deadline_error("deadline budget spent on arrival"));
        }
        // Zero capacity can never drain a queue: shed outright rather
        // than park a waiter behind a slot that will never free.
        if self.config.max_inflight == 0 {
            st.shed(priority, ShedReason::QueueFull);
            return Err(refused_queue_full(self.config.queue_depth, priority));
        }
        // Brownout: saturation that has persisted for `brownout_after`
        // sheds Batch on arrival, before it can occupy queue space that
        // Interactive traffic needs.
        if st.inflight >= self.config.max_inflight {
            let since = *st.saturated_since.get_or_insert(now);
            if now.duration_since(since) >= self.config.brownout_after {
                if !st.in_brownout {
                    st.in_brownout = true;
                    st.stats.brownouts += 1;
                }
                if priority == ServePriority::Batch {
                    st.shed(priority, ShedReason::Brownout);
                    return Err(CqcError::Protocol {
                        code: code::REFUSED,
                        detail: "brownout: server saturated, batch-class serve shed \
                                 (retry later or raise the priority class)"
                            .to_string(),
                    });
                }
            }
        }
        if st.inflight < self.config.max_inflight && st.queue.is_empty() {
            st.inflight += 1;
            st.stats.admitted += 1;
            return Ok(Permit { ctl: self });
        }
        // Queue, shedding on overflow: evict the weakest waiter if the
        // newcomer outranks it, else shed the newcomer.
        let seq = st.next_seq;
        st.next_seq += 1;
        if st.queue.len() >= self.config.queue_depth {
            let victim = st
                .queue
                .iter()
                .enumerate()
                .min_by_key(|(_, w)| w.key())
                .map(|(i, w)| (i, *w));
            match victim {
                Some((i, w)) if w.key() < (priority.shed_rank(), seq) => {
                    st.queue.swap_remove(i);
                    st.decided.insert(w.ticket, false);
                    st.shed(w.priority, ShedReason::QueueFull);
                    self.wakeup.notify_all();
                }
                _ => {
                    st.shed(priority, ShedReason::QueueFull);
                    return Err(refused_queue_full(self.config.queue_depth, priority));
                }
            }
        }
        let ticket = st.next_ticket;
        st.next_ticket += 1;
        st.queue.push(Waiter {
            ticket,
            priority,
            seq,
        });
        loop {
            st = match deadline {
                Some(d) => {
                    let left = d.saturating_duration_since(Instant::now());
                    if left.is_zero() {
                        if st.remove_waiter(ticket) {
                            // A grant raced our timeout: pass the slot
                            // on so the queue cannot stall.
                            st.drain(self.config.max_inflight);
                            self.wakeup.notify_all();
                        }
                        st.shed(priority, ShedReason::Expired);
                        return Err(deadline_error("deadline budget spent while queued"));
                    }
                    self.wakeup
                        .wait_timeout(st, left)
                        .expect("admission lock")
                        .0
                }
                None => self.wakeup.wait(st).expect("admission lock"),
            };
            if let Some(admitted) = st.decided.remove(&ticket) {
                if admitted {
                    // The releasing side already moved the slot to us.
                    return Ok(Permit { ctl: self });
                }
                return Err(refused_queue_full(self.config.queue_depth, priority));
            }
        }
    }

    /// Accounts a cost-based shed decided *outside* the controller: the
    /// server refuses a request whose wire budget cannot cover the
    /// view's measured serve cost before admission ever runs, but the
    /// shed still belongs in these stats (reason: deadline).
    pub fn record_cost_shed(&self, priority: ServePriority) {
        let mut st = self.state.lock().expect("admission lock");
        st.shed(priority, ShedReason::Expired);
    }

    /// Releases one serve slot and hands it to the strongest waiter
    /// (highest priority, then newest — the adaptive-LIFO order).
    fn release(&self) {
        let mut st = self.state.lock().expect("admission lock");
        st.inflight -= 1;
        st.drain(self.config.max_inflight);
        if st.inflight < self.config.max_inflight {
            st.saturated_since = None;
            st.in_brownout = false;
        }
        self.wakeup.notify_all();
    }
}

impl State {
    /// Grants free slots to waiters, strongest first.
    fn drain(&mut self, max_inflight: usize) {
        while self.inflight < max_inflight {
            let best = self
                .queue
                .iter()
                .enumerate()
                .max_by_key(|(_, w)| w.key())
                .map(|(i, _)| i);
            let Some(i) = best else { break };
            let w = self.queue.swap_remove(i);
            self.decided.insert(w.ticket, true);
            self.inflight += 1;
            self.stats.admitted += 1;
        }
    }

    fn shed(&mut self, priority: ServePriority, reason: ShedReason) {
        match priority {
            ServePriority::Interactive => self.stats.shed_interactive += 1,
            ServePriority::Batch => self.stats.shed_batch += 1,
            ServePriority::Internal => self.stats.shed_internal += 1,
        }
        match reason {
            ShedReason::Expired => self.stats.shed_expired += 1,
            ShedReason::QueueFull => self.stats.shed_queue_full += 1,
            ShedReason::Brownout => self.stats.shed_brownout += 1,
        }
    }

    /// Withdraws a queued waiter (timeout path). Returns `true` when a
    /// grant had raced the withdrawal — the slot is already counted in
    /// `inflight` and the caller must pass it on.
    fn remove_waiter(&mut self, ticket: u64) -> bool {
        if let Some(i) = self.queue.iter().position(|w| w.ticket == ticket) {
            self.queue.swap_remove(i);
        }
        if self.decided.remove(&ticket) == Some(true) {
            self.inflight -= 1;
            return true;
        }
        false
    }
}

/// The typed error for a spent deadline budget.
pub(crate) fn deadline_error(detail: &str) -> CqcError {
    CqcError::Protocol {
        code: code::DEADLINE,
        detail: detail.to_string(),
    }
}

fn refused_queue_full(depth: usize, priority: ServePriority) -> CqcError {
    CqcError::Protocol {
        code: code::REFUSED,
        detail: format!(
            "server overloaded: admission queue full (depth {depth}), {priority:?}-class \
             serve shed"
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;
    use std::sync::Arc;

    fn ctl(
        max_inflight: usize,
        queue_depth: usize,
        brownout: Duration,
    ) -> Arc<AdmissionController> {
        Arc::new(AdmissionController::new(AdmissionConfig {
            max_inflight,
            queue_depth,
            brownout_after: brownout,
        }))
    }

    fn is_refused(e: &CqcError) -> bool {
        matches!(
            e,
            CqcError::Protocol {
                code: code::REFUSED,
                ..
            }
        )
    }

    fn is_deadline(e: &CqcError) -> bool {
        matches!(
            e,
            CqcError::Protocol {
                code: code::DEADLINE,
                ..
            }
        )
    }

    #[test]
    fn admits_up_to_max_then_sheds_when_queueless() {
        let c = ctl(2, 0, Duration::from_secs(60));
        let p1 = c.admit(ServePriority::Interactive, None).unwrap();
        let _p2 = c.admit(ServePriority::Interactive, None).unwrap();
        let err = c.admit(ServePriority::Interactive, None).unwrap_err();
        assert!(is_refused(&err), "{err}");
        drop(p1);
        let _p3 = c.admit(ServePriority::Interactive, None).unwrap();
        let s = c.stats();
        assert_eq!(s.admitted, 3);
        assert_eq!(s.shed_interactive, 1);
        assert_eq!(s.shed_queue_full, 1);
    }

    #[test]
    fn zero_capacity_refuses_even_unbounded_requests() {
        let c = ctl(0, 4, Duration::from_secs(60));
        let err = c
            .admit(ServePriority::Interactive, None)
            .map(|_| ())
            .unwrap_err();
        assert!(is_refused(&err), "{err}");
        let s = c.stats();
        assert_eq!(s.shed_queue_full, 1);
        assert_eq!(s.admitted, 0);
    }

    #[test]
    fn expired_on_arrival_is_a_typed_deadline_shed() {
        let c = ctl(4, 4, Duration::from_secs(60));
        let err = c
            .admit(
                ServePriority::Interactive,
                Some(Instant::now() - Duration::from_millis(1)),
            )
            .unwrap_err();
        assert!(is_deadline(&err), "{err}");
        let s = c.stats();
        assert_eq!(s.shed_expired, 1);
        assert_eq!(s.admitted, 0);
    }

    #[test]
    fn queued_request_runs_when_a_slot_frees() {
        let c = ctl(1, 2, Duration::from_secs(60));
        let holder = c.admit(ServePriority::Interactive, None).unwrap();
        let (tx, rx) = mpsc::channel();
        let c2 = Arc::clone(&c);
        let t = std::thread::spawn(move || {
            let p = c2.admit(ServePriority::Interactive, None);
            tx.send(()).unwrap();
            drop(p.unwrap());
        });
        // The waiter must be parked, not admitted.
        assert!(rx.recv_timeout(Duration::from_millis(100)).is_err());
        drop(holder);
        rx.recv_timeout(Duration::from_secs(5))
            .expect("queued request admitted after release");
        t.join().unwrap();
        assert_eq!(c.stats().admitted, 2);
    }

    #[test]
    fn deadline_expires_while_queued() {
        let c = ctl(1, 2, Duration::from_secs(60));
        let _holder = c.admit(ServePriority::Interactive, None).unwrap();
        let started = Instant::now();
        let err = c
            .admit(
                ServePriority::Batch,
                Some(Instant::now() + Duration::from_millis(50)),
            )
            .unwrap_err();
        assert!(is_deadline(&err), "{err}");
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "the queued waiter must give up at its deadline, not hang"
        );
        let s = c.stats();
        assert_eq!(s.shed_batch, 1);
        assert_eq!(s.shed_expired, 1);
    }

    #[test]
    fn overflow_evicts_the_weakest_oldest_waiter_first() {
        let c = ctl(1, 1, Duration::from_secs(60));
        let _holder = c.admit(ServePriority::Interactive, None).unwrap();
        // One Batch waiter occupies the single queue slot.
        let (tx, rx) = mpsc::channel();
        let c2 = Arc::clone(&c);
        let batch = std::thread::spawn(move || {
            let r = c2.admit(ServePriority::Batch, None);
            tx.send(r.map(|_| ()).map_err(|e| e.to_string())).unwrap();
        });
        while c.state.lock().unwrap().queue.is_empty() {
            std::thread::sleep(Duration::from_millis(1));
        }
        // An Interactive newcomer overflows the queue: the Batch waiter
        // is evicted with a typed REFUSED and the newcomer takes the
        // slot; a later Batch newcomer is shed outright (it does not
        // outrank the queued Interactive).
        let (itx, irx) = mpsc::channel();
        let c3 = Arc::clone(&c);
        let interactive = std::thread::spawn(move || {
            let r = c3.admit(ServePriority::Interactive, None);
            itx.send(()).unwrap();
            drop(r.unwrap());
        });
        let evicted = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert!(
            evicted.unwrap_err().contains("queue full"),
            "batch waiter must be evicted by the stronger newcomer"
        );
        batch.join().unwrap();
        let err = c.admit(ServePriority::Batch, None).map(|_| ()).unwrap_err();
        assert!(is_refused(&err), "{err}");
        drop(_holder);
        irx.recv_timeout(Duration::from_secs(5))
            .expect("interactive waiter admitted after release");
        interactive.join().unwrap();
        let s = c.stats();
        assert_eq!(s.shed_batch, 2, "evicted waiter + shed newcomer");
        assert_eq!(s.shed_interactive, 0);
        assert_eq!(s.admitted, 2);
    }

    #[test]
    fn sustained_saturation_browns_out_batch_but_not_interactive() {
        let c = ctl(1, 4, Duration::ZERO);
        let _holder = c.admit(ServePriority::Interactive, None).unwrap();
        // Saturation begins on the first refused-ish arrival; with a
        // zero brownout threshold the second Batch arrival is inside
        // the brownout window.
        let past = Some(Instant::now() + Duration::from_millis(20));
        let _ = c.admit(ServePriority::Batch, past);
        let err = c.admit(ServePriority::Batch, None).map(|_| ()).unwrap_err();
        assert!(is_refused(&err), "{err}");
        assert!(err.to_string().contains("brownout"), "{err}");
        // Interactive is NOT brownout-shed: it queues (and then times
        // out on its own deadline, which is a DEADLINE, not a REFUSED).
        let err = c
            .admit(
                ServePriority::Interactive,
                Some(Instant::now() + Duration::from_millis(30)),
            )
            .map(|_| ())
            .unwrap_err();
        assert!(is_deadline(&err), "{err}");
        let s = c.stats();
        assert!(s.shed_brownout >= 1, "{s:?}");
        assert_eq!(s.brownouts, 1, "one saturation episode, one brownout");
        // Releasing the slot ends the episode.
        drop(_holder);
        let _p = c.admit(ServePriority::Batch, None).unwrap();
        assert_eq!(c.stats().brownouts, 1);
    }
}
