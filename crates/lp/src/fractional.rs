//! The Section 6 optimization problems.
//!
//! **MinDelayCover**: given an adorned view, relation sizes and a space
//! budget `Σ`, choose a fractional edge cover `u` (and its slack `α`)
//! minimizing the delay `τ` of Theorem 1 subject to the space constraint
//! `Π_F |R_F|^{u_F} / τ^α ≤ Σ`.
//!
//! Figure 5 expresses the problem as a bilinear program, rewrites it as a
//! linear-fractional program in `(u, α, τ̂)` with `τ̂ = α·log τ`, and
//! Proposition 11 solves it through the Charnes–Cooper transformation. This
//! module implements that transformation directly ([`min_delay_cover`]) plus
//! an independent feasibility binary search ([`min_delay_cover_bisect`]) used
//! to cross-check it.
//!
//! **MinSpaceCover** (Proposition 12) minimizes space under a delay budget;
//! with the delay fixed the objective is already linear, so a single LP
//! suffices.
//!
//! All size quantities are *logarithms* (natural log of relation sizes, of
//! the space budget, of the delay). Working in log space is exactly what
//! turns the paper's products into linear constraints.

use crate::simplex::{Cmp, Lp};
use cqc_common::error::{CqcError, Result};
use cqc_query::{Hypergraph, VarSet};

/// A cover choice produced by the optimizers.
#[derive(Debug, Clone)]
pub struct CoverChoice {
    /// The fractional edge cover `u` (indexed like `Hypergraph::edges`).
    pub weights: Vec<f64>,
    /// The slack `α = α(V_f)` of `u` (eq. 2).
    pub alpha: f64,
    /// `log τ`: logarithm of the delay parameter.
    pub log_tau: f64,
    /// `log` of the non-linear space term `Π_F |R_F|^{u_F} / τ^α`
    /// (the structure additionally keeps the linear-size base indexes).
    pub log_space: f64,
}

fn validate_inputs(h: &Hypergraph, vf: VarSet, log_sizes: &[f64]) -> Result<()> {
    if log_sizes.len() != h.num_edges() {
        return Err(CqcError::Lp(format!(
            "expected {} log-sizes, got {}",
            h.num_edges(),
            log_sizes.len()
        )));
    }
    if log_sizes.iter().any(|l| !l.is_finite() || *l < 0.0) {
        return Err(CqcError::Lp("log-sizes must be finite and >= 0".into()));
    }
    if !vf.is_subset_of(h.all_vars()) {
        return Err(CqcError::Lp("free variables outside hypergraph".into()));
    }
    for x in h.all_vars().iter() {
        if !h.edges().iter().any(|e| e.contains(x)) {
            return Err(CqcError::Lp(format!("variable {x} covered by no edge")));
        }
    }
    Ok(())
}

/// The slack of `weights` for `vf` (duplicated from `covers` to keep this
/// module self-contained for the recovered solutions).
fn slack_of(h: &Hypergraph, weights: &[f64], vf: VarSet) -> f64 {
    if vf.is_empty() {
        return 1.0;
    }
    vf.iter()
        .map(|x| {
            h.edges()
                .iter()
                .zip(weights)
                .filter(|(e, _)| e.contains(x))
                .map(|(_, w)| *w)
                .sum::<f64>()
        })
        .fold(f64::INFINITY, f64::min)
}

/// **MinDelayCover** via the Charnes–Cooper transformation (Fig. 5b,
/// Prop. 11).
///
/// Minimizes `log τ` subject to
/// `Σ_F u_F·log|R_F| ≤ log Σ + α·log τ`, `u` a fractional edge cover of all
/// variables with `u_F ≤ 1`, and `α` at most the slack of `u` on `vf`
/// (capped at the number of edges, as in the proof of Prop. 11).
///
/// After the substitution `z = t·y`, `t = 1/α`, the transformed program is a
/// plain LP whose optimal objective *is* `log τ` directly.
pub fn min_delay_cover(
    h: &Hypergraph,
    vf: VarSet,
    log_sizes: &[f64],
    log_space_budget: f64,
) -> Result<CoverChoice> {
    validate_inputs(h, vf, log_sizes)?;
    let m = h.num_edges();
    let sum_l: f64 = log_sizes.iter().sum();
    let tau_cap = ((m as f64) + 1.0) * sum_l.max(1.0);
    let alpha_cap = (m as f64).max(1.0);

    // Variables: u'_0..u'_{m-1}, τ̂', t   (α' = α·t = 1 substituted away).
    let n = m + 2;
    let ti = m + 1; // index of t
    let hi = m; // index of τ̂'

    let mut obj = vec![0.0; n];
    obj[hi] = 1.0;
    let mut lp = Lp::minimize(n, obj);

    // Σ u'_F L_F − τ̂' − t·logΣ ≤ 0.
    let mut row = vec![0.0; n];
    row[..m].copy_from_slice(log_sizes);
    row[hi] = -1.0;
    row[ti] = -log_space_budget;
    lp.constraint(row, Cmp::Le, 0.0);

    // ∀x ∈ V_f: Σ_{F∋x} u'_F ≥ α' = 1.
    for x in vf.iter() {
        let mut row = vec![0.0; n];
        for (j, e) in h.edges().iter().enumerate() {
            if e.contains(x) {
                row[j] = 1.0;
            }
        }
        lp.constraint(row, Cmp::Ge, 1.0);
    }
    // ∀x ∈ V: Σ_{F∋x} u'_F ≥ t (cover after de-homogenization).
    for x in h.all_vars().iter() {
        let mut row = vec![0.0; n];
        for (j, e) in h.edges().iter().enumerate() {
            if e.contains(x) {
                row[j] = 1.0;
            }
        }
        row[ti] = -1.0;
        lp.constraint(row, Cmp::Ge, 0.0);
    }
    // u'_F ≤ t (u ≤ 1).
    for j in 0..m {
        let mut row = vec![0.0; n];
        row[j] = 1.0;
        row[ti] = -1.0;
        lp.constraint(row, Cmp::Le, 0.0);
    }
    // α ≥ 1 ⇔ t ≤ 1; α ≤ alpha_cap ⇔ t ≥ 1/alpha_cap.
    let mut row = vec![0.0; n];
    row[ti] = 1.0;
    lp.constraint(row.clone(), Cmp::Le, 1.0);
    lp.constraint(row, Cmp::Ge, 1.0 / alpha_cap);
    // τ̂ ≤ tau_cap ⇔ τ̂' ≤ t·tau_cap (keeps the region bounded, cf. Prop. 11).
    let mut row = vec![0.0; n];
    row[hi] = 1.0;
    row[ti] = -tau_cap;
    lp.constraint(row, Cmp::Le, 0.0);

    let s = lp.solve()?;
    let t = s.x[ti];
    if t <= 1e-12 {
        return Err(CqcError::Lp(
            "degenerate Charnes-Cooper solution (t = 0)".into(),
        ));
    }
    let weights: Vec<f64> = s.x[..m].iter().map(|u| u / t).collect();
    let alpha = 1.0 / t;
    let log_tau = s.objective; // τ̂/α = τ̂' by the transformation.
    let log_space = weights
        .iter()
        .zip(log_sizes)
        .map(|(u, l)| u * l)
        .sum::<f64>()
        - alpha * log_tau;
    Ok(CoverChoice {
        weights,
        alpha,
        log_tau: log_tau.max(0.0),
        log_space,
    })
}

/// Inner LP of the binary search: the minimum achievable
/// `log(Π|R_F|^{u_F} / τ^α)` for a *fixed* `log τ = d`.
fn best_space_at_delay(
    h: &Hypergraph,
    vf: VarSet,
    log_sizes: &[f64],
    d: f64,
) -> Result<(f64, Vec<f64>, f64)> {
    let m = h.num_edges();
    let alpha_cap = (m as f64).max(1.0);
    // Variables: u_0..u_{m-1}, α.
    let n = m + 1;
    let mut obj = vec![0.0; n];
    obj[..m].copy_from_slice(log_sizes);
    obj[m] = -d;
    let mut lp = Lp::minimize(n, obj);
    for x in h.all_vars().iter() {
        let mut row = vec![0.0; n];
        for (j, e) in h.edges().iter().enumerate() {
            if e.contains(x) {
                row[j] = 1.0;
            }
        }
        lp.constraint(row, Cmp::Ge, 1.0);
    }
    for x in vf.iter() {
        let mut row = vec![0.0; n];
        for (j, e) in h.edges().iter().enumerate() {
            if e.contains(x) {
                row[j] = 1.0;
            }
        }
        row[m] = -1.0;
        lp.constraint(row, Cmp::Ge, 0.0);
    }
    for j in 0..m {
        let mut row = vec![0.0; n];
        row[j] = 1.0;
        lp.constraint(row, Cmp::Le, 1.0);
    }
    let mut row = vec![0.0; n];
    row[m] = 1.0;
    lp.constraint(row.clone(), Cmp::Ge, 1.0);
    lp.constraint(row, Cmp::Le, alpha_cap);
    let s = lp.solve()?;
    Ok((s.objective, s.x[..m].to_vec(), s.x[m]))
}

/// **MinDelayCover** by feasibility binary search over `log τ`
/// (cross-check for [`min_delay_cover`]; also a readable reference
/// implementation).
pub fn min_delay_cover_bisect(
    h: &Hypergraph,
    vf: VarSet,
    log_sizes: &[f64],
    log_space_budget: f64,
) -> Result<CoverChoice> {
    validate_inputs(h, vf, log_sizes)?;
    let sum_l: f64 = log_sizes.iter().sum();
    let mut lo = 0.0f64;
    let mut hi = sum_l.max(1.0);
    // Feasibility is monotone in d: more delay never hurts.
    if best_space_at_delay(h, vf, log_sizes, lo)?.0 > log_space_budget + 1e-9 {
        for _ in 0..70 {
            let mid = 0.5 * (lo + hi);
            let (space, _, _) = best_space_at_delay(h, vf, log_sizes, mid)?;
            if space <= log_space_budget + 1e-12 {
                hi = mid;
            } else {
                lo = mid;
            }
        }
    } else {
        hi = 0.0;
    }
    let d = hi;
    let (space, weights, alpha) = best_space_at_delay(h, vf, log_sizes, d)?;
    Ok(CoverChoice {
        alpha: alpha.min(slack_of(h, &weights, vf)),
        weights,
        log_tau: d,
        log_space: space,
    })
}

/// **MinSpaceCover** (Prop. 12): minimize the space of Theorem 1 subject to
/// a delay budget `log τ ≤ log_delay_budget`.
///
/// Because space strictly decreases in `τ`, the optimum uses the entire
/// delay budget, so the problem is the single LP
/// `min Σ u_F·log|R_F| − α·log Δ` over covers — no fractional objective and
/// no binary search needed (the paper reaches the same conclusion by reusing
/// MinDelayCover inside a search; the direct LP is equivalent).
pub fn min_space_cover(
    h: &Hypergraph,
    vf: VarSet,
    log_sizes: &[f64],
    log_delay_budget: f64,
) -> Result<CoverChoice> {
    validate_inputs(h, vf, log_sizes)?;
    if log_delay_budget < 0.0 {
        return Err(CqcError::Lp("delay budget must be >= 1 (log >= 0)".into()));
    }
    let (space, weights, alpha) = best_space_at_delay(h, vf, log_sizes, log_delay_budget)?;
    Ok(CoverChoice {
        alpha,
        weights,
        log_tau: log_delay_budget,
        log_space: space,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqc_query::Var;

    fn close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-5, "expected {b}, got {a}");
    }

    fn vs(vars: &[u32]) -> VarSet {
        vars.iter().map(|&v| Var(v)).collect()
    }

    fn triangle() -> Hypergraph {
        Hypergraph::new(3, vec![vs(&[0, 1]), vs(&[1, 2]), vs(&[2, 0])])
    }

    fn star(n: u32) -> Hypergraph {
        Hypergraph::new(n as usize + 1, (0..n).map(|i| vs(&[i, n])).collect())
    }

    /// Triangle, all free, unit log-sizes (log base N): linear-space budget
    /// forces `log τ = 1/2` — the √N delay of Example 1.
    #[test]
    fn triangle_linear_space_needs_sqrt_delay() {
        let h = triangle();
        let c = min_delay_cover(&h, h.all_vars(), &[1.0, 1.0, 1.0], 1.0).unwrap();
        close(c.log_tau, 0.5);
        assert!(c.log_space <= 1.0 + 1e-6);
        // Cover validity.
        for x in h.all_vars().iter() {
            let cov: f64 = h
                .edges()
                .iter()
                .zip(&c.weights)
                .filter(|(e, _)| e.contains(x))
                .map(|(_, w)| *w)
                .sum();
            assert!(cov >= 1.0 - 1e-6);
        }
    }

    /// With budget N^{3/2} the triangle admits constant delay (materialize).
    #[test]
    fn triangle_full_space_constant_delay() {
        let h = triangle();
        let c = min_delay_cover(&h, h.all_vars(), &[1.0, 1.0, 1.0], 1.5).unwrap();
        close(c.log_tau, 0.0);
    }

    /// Example 7 shape: star with bound petals and free center, budget N:
    /// `log τ = (n−1)/n` thanks to slack n.
    #[test]
    fn star_slack_improves_delay() {
        for n in [2u32, 3, 4] {
            let h = star(n);
            let sizes = vec![1.0; n as usize];
            let c = min_delay_cover(&h, VarSet::singleton(Var(n)), &sizes, 1.0).unwrap();
            close(c.log_tau, f64::from(n - 1) / f64::from(n));
            close(c.alpha, f64::from(n));
        }
    }

    #[test]
    fn charnes_cooper_matches_bisection() {
        let cases: Vec<(Hypergraph, VarSet, Vec<f64>, f64)> = vec![
            (triangle(), vs(&[0, 1, 2]), vec![1.0, 1.0, 1.0], 1.0),
            (triangle(), vs(&[1]), vec![1.0, 1.0, 1.0], 1.0),
            (triangle(), vs(&[0, 1, 2]), vec![1.0, 2.0, 1.0], 1.7),
            (star(3), vs(&[3]), vec![1.0, 1.0, 1.0], 1.2),
            (star(2), vs(&[0, 1, 2]), vec![1.0, 1.5], 1.4),
        ];
        for (h, vf, sizes, budget) in cases {
            let cc = min_delay_cover(&h, vf, &sizes, budget).unwrap();
            let bs = min_delay_cover_bisect(&h, vf, &sizes, budget).unwrap();
            assert!(
                (cc.log_tau - bs.log_tau).abs() < 1e-5,
                "CC {} vs bisect {} (budget {budget})",
                cc.log_tau,
                bs.log_tau
            );
        }
    }

    #[test]
    fn min_space_uses_whole_delay_budget() {
        let h = triangle();
        // Delay budget √N on the triangle: minimal space is N (linear).
        let c = min_space_cover(&h, h.all_vars(), &[1.0, 1.0, 1.0], 0.5).unwrap();
        close(c.log_space, 1.0);
        close(c.log_tau, 0.5);
        // No delay budget: space is N^{3/2}.
        let c = min_space_cover(&h, h.all_vars(), &[1.0, 1.0, 1.0], 0.0).unwrap();
        close(c.log_space, 1.5);
    }

    #[test]
    fn space_delay_tradeoff_is_monotone() {
        let h = triangle();
        let mut last = f64::INFINITY;
        for d in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let c = min_space_cover(&h, h.all_vars(), &[1.0, 1.0, 1.0], d).unwrap();
            assert!(c.log_space <= last + 1e-9, "space must shrink with delay");
            last = c.log_space;
        }
    }

    #[test]
    fn generous_budget_gives_zero_delay() {
        let h = star(3);
        let c = min_delay_cover(&h, vs(&[3]), &[1.0, 1.0, 1.0], 10.0).unwrap();
        close(c.log_tau, 0.0);
    }

    #[test]
    fn input_validation() {
        let h = triangle();
        assert!(min_delay_cover(&h, h.all_vars(), &[1.0, 1.0], 1.0).is_err());
        assert!(min_delay_cover(&h, h.all_vars(), &[1.0, f64::NAN, 1.0], 1.0).is_err());
        assert!(min_space_cover(&h, h.all_vars(), &[1.0, 1.0, 1.0], -1.0).is_err());
        let uncovered = Hypergraph::new(2, vec![vs(&[0])]);
        assert!(min_delay_cover(&uncovered, vs(&[0]), &[1.0], 1.0).is_err());
    }

    /// Loomis–Whitney (Example 6): budget N forces log τ = 1/(n−1).
    #[test]
    fn lw_linear_space_delay() {
        for n in [3usize, 4] {
            let all = VarSet::first_n(n);
            let edges = (0..n as u32).map(|i| all.without(Var(i))).collect();
            let h = Hypergraph::new(n, edges);
            let sizes = vec![1.0; n];
            let c = min_delay_cover(&h, all, &sizes, 1.0).unwrap();
            close(c.log_tau, 1.0 / (n as f64 - 1.0));
        }
    }
}
