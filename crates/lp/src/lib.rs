//! Linear programming for cover computations and parameter optimization.
//!
//! Three layers:
//!
//! * [`simplex`] — a dense two-phase primal simplex solver with Bland's
//!   anti-cycling rule. The LPs in this workspace have at most a few dozen
//!   variables (one per hyperedge plus `α`, `τ̂`, `t`), so a dense tableau is
//!   the right tool;
//! * [`covers`] — fractional edge covers: the cover number `ρ*_H(S)` of
//!   §2.1, the slack `α(S)` of eq. (2), and the per-bag quantity `ρ⁺_t` of
//!   eq. (3);
//! * [`fractional`] — the Section 6 optimization problems **MinDelayCover**
//!   and **MinSpaceCover**, solved both through the Charnes–Cooper
//!   transformation of Figure 5 (Proposition 11) and through a feasibility
//!   binary search used as a cross-check.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod covers;
pub mod fractional;
pub mod simplex;

pub use covers::{
    max_fractional_matching, min_fractional_edge_cover, rho_plus, rho_star, slack, CoverSolution,
    RhoPlus,
};
pub use fractional::{min_delay_cover, min_space_cover, CoverChoice};
pub use simplex::{Cmp, Lp, LpSolution};
