//! A dense two-phase primal simplex solver.
//!
//! Solves `minimize c·x` subject to `A x {≤,=,≥} b`, `x ≥ 0`. Phase 1
//! minimizes the sum of artificial variables to find a basic feasible
//! solution; phase 2 optimizes the real objective. Bland's rule (smallest
//! index entering, smallest basis index on ratio ties) guarantees
//! termination. All arithmetic is `f64` with an absolute tolerance — the
//! cover programs solved here have tiny, well-scaled coefficients
//! (logarithms of relation sizes and 0/1 incidence entries).

use cqc_common::error::{CqcError, Result};

/// Comparison operator of a constraint row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// `a·x ≤ b`
    Le,
    /// `a·x = b`
    Eq,
    /// `a·x ≥ b`
    Ge,
}

/// A linear program in the form `min c·x  s.t.  A x {≤,=,≥} b,  x ≥ 0`.
#[derive(Debug, Clone)]
pub struct Lp {
    n: usize,
    objective: Vec<f64>,
    rows: Vec<Vec<f64>>,
    cmps: Vec<Cmp>,
    rhs: Vec<f64>,
    objective_negated: bool,
}

/// An optimal solution.
#[derive(Debug, Clone)]
pub struct LpSolution {
    /// Optimal objective value.
    pub objective: f64,
    /// Optimal variable assignment.
    pub x: Vec<f64>,
}

const EPS: f64 = 1e-9;

// Tableau pivots index several parallel arrays by the same column variable;
// index loops are the clearest formulation here.
#[allow(clippy::needless_range_loop)]
impl Lp {
    /// Creates a program over `n` non-negative variables minimizing
    /// `objective · x`.
    ///
    /// # Panics
    ///
    /// Panics if `objective.len() != n`.
    pub fn minimize(n: usize, objective: Vec<f64>) -> Lp {
        assert_eq!(objective.len(), n);
        Lp {
            n,
            objective,
            rows: Vec::new(),
            cmps: Vec::new(),
            rhs: Vec::new(),
            objective_negated: false,
        }
    }

    /// Creates a program maximizing `objective · x` (negates internally).
    pub fn maximize(n: usize, objective: Vec<f64>) -> Lp {
        let neg = objective.into_iter().map(|c| -c).collect();
        let mut lp = Lp::minimize(n, neg);
        lp.objective_negated = true;
        lp
    }

    /// Adds the constraint `coeffs · x  cmp  rhs`.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len() != n`.
    pub fn constraint(&mut self, coeffs: Vec<f64>, cmp: Cmp, rhs: f64) -> &mut Lp {
        assert_eq!(coeffs.len(), self.n);
        self.rows.push(coeffs);
        self.cmps.push(cmp);
        self.rhs.push(rhs);
        self
    }

    /// Number of decision variables.
    pub fn num_vars(&self) -> usize {
        self.n
    }

    /// Solves the program.
    ///
    /// Every solve is attributed to the `Lp` build phase of
    /// [`cqc_common::metrics`] — this is the single funnel all §6 programs
    /// (MinDelayCover, MinSpaceCover, the ρ⁺ solves of the width search)
    /// pass through, so `cqe bench --profile build` can report total
    /// LP time without instrumenting each optimizer.
    ///
    /// # Errors
    ///
    /// [`CqcError::Lp`] when the program is infeasible or unbounded.
    pub fn solve(&self) -> Result<LpSolution> {
        let t0 = std::time::Instant::now();
        let out = self.solve_inner();
        cqc_common::metrics::record_build_phase(
            cqc_common::metrics::BuildPhase::Lp,
            t0.elapsed().as_nanos() as u64,
        );
        out
    }

    fn solve_inner(&self) -> Result<LpSolution> {
        let m = self.rows.len();
        let n = self.n;

        // Normalize to b >= 0.
        let mut rows = self.rows.clone();
        let mut cmps = self.cmps.clone();
        let mut rhs = self.rhs.clone();
        for i in 0..m {
            if rhs[i] < 0.0 {
                for a in rows[i].iter_mut() {
                    *a = -*a;
                }
                rhs[i] = -rhs[i];
                cmps[i] = match cmps[i] {
                    Cmp::Le => Cmp::Ge,
                    Cmp::Ge => Cmp::Le,
                    Cmp::Eq => Cmp::Eq,
                };
            }
        }

        // Column layout: [decision | slack/surplus | artificial | rhs].
        let n_slack = cmps.iter().filter(|c| **c != Cmp::Eq).count();
        let n_art = cmps.iter().filter(|c| **c != Cmp::Le).count();
        let total = n + n_slack + n_art;
        let rhs_col = total;

        let mut t = vec![vec![0.0f64; total + 1]; m];
        let mut basis = vec![usize::MAX; m];
        let mut slack_at = n;
        let mut art_at = n + n_slack;
        let art_start = n + n_slack;

        for i in 0..m {
            t[i][..n].copy_from_slice(&rows[i]);
            t[i][rhs_col] = rhs[i];
            match cmps[i] {
                Cmp::Le => {
                    t[i][slack_at] = 1.0;
                    basis[i] = slack_at;
                    slack_at += 1;
                }
                Cmp::Ge => {
                    t[i][slack_at] = -1.0;
                    slack_at += 1;
                    t[i][art_at] = 1.0;
                    basis[i] = art_at;
                    art_at += 1;
                }
                Cmp::Eq => {
                    t[i][art_at] = 1.0;
                    basis[i] = art_at;
                    art_at += 1;
                }
            }
        }

        // Phase 1: minimize the sum of artificials.
        if n_art > 0 {
            let mut cost = vec![0.0f64; total + 1];
            for j in art_start..total {
                cost[j] = 1.0;
            }
            // Zero out reduced costs of the basic (artificial) columns.
            for i in 0..m {
                if basis[i] >= art_start {
                    for j in 0..=total {
                        cost[j] -= t[i][j];
                    }
                }
            }
            Self::optimize(&mut t, &mut cost, &mut basis, total, rhs_col, usize::MAX)?;
            let phase1 = -cost[rhs_col];
            if phase1 > 1e-7 {
                return Err(CqcError::Lp("infeasible linear program".into()));
            }
            // Drive remaining artificials out of the basis.
            for i in 0..m {
                if basis[i] >= art_start {
                    if let Some(j) = (0..art_start).find(|&j| t[i][j].abs() > EPS) {
                        let mut dummy_cost = vec![0.0; total + 1];
                        Self::pivot(&mut t, &mut dummy_cost, &mut basis, i, j, total);
                    }
                    // If the row is all zeros it is redundant; the artificial
                    // stays basic at level zero, which is harmless as long as
                    // it never re-enters (phase 2 forbids artificial columns).
                }
            }
        }

        // Phase 2: minimize the real objective.
        let mut cost = vec![0.0f64; total + 1];
        cost[..n].copy_from_slice(&self.objective);
        for i in 0..m {
            let b = basis[i];
            if b < n && cost[b].abs() > 0.0 {
                let c = cost[b];
                for j in 0..=total {
                    cost[j] -= c * t[i][j];
                }
            }
        }
        Self::optimize(&mut t, &mut cost, &mut basis, total, rhs_col, art_start)?;

        let mut x = vec![0.0f64; n];
        for i in 0..m {
            if basis[i] < n {
                x[basis[i]] = t[i][rhs_col];
            }
        }
        let mut objective = self
            .objective
            .iter()
            .zip(&x)
            .map(|(c, v)| c * v)
            .sum::<f64>();
        if self.objective_negated {
            objective = -objective;
        }
        Ok(LpSolution { objective, x })
    }

    /// Runs simplex iterations on the tableau until optimal.
    ///
    /// `col_limit` restricts entering columns to indexes `< col_limit`
    /// (phase 2 uses it to forbid artificial columns).
    fn optimize(
        t: &mut [Vec<f64>],
        cost: &mut [f64],
        basis: &mut [usize],
        total: usize,
        rhs_col: usize,
        col_limit: usize,
    ) -> Result<()> {
        let m = t.len();
        let limit = col_limit.min(total);
        loop {
            // Bland's rule: smallest-index column with negative reduced cost.
            let Some(enter) = (0..limit).find(|&j| cost[j] < -EPS) else {
                return Ok(());
            };
            // Min ratio test; Bland tie-break on smallest basis index.
            let mut leave: Option<usize> = None;
            let mut best = f64::INFINITY;
            for (i, row) in t.iter().enumerate() {
                if row[enter] > EPS {
                    let ratio = row[rhs_col] / row[enter];
                    let better = ratio < best - EPS
                        || (ratio < best + EPS && leave.is_some_and(|l| basis[i] < basis[l]));
                    if better {
                        best = ratio;
                        leave = Some(i);
                    }
                }
            }
            let Some(leave) = leave else {
                return Err(CqcError::Lp("unbounded linear program".into()));
            };
            let _ = m;
            Self::pivot_with_cost(t, cost, basis, leave, enter, total);
        }
    }

    fn pivot_with_cost(
        t: &mut [Vec<f64>],
        cost: &mut [f64],
        basis: &mut [usize],
        row: usize,
        col: usize,
        total: usize,
    ) {
        let piv = t[row][col];
        debug_assert!(piv.abs() > EPS);
        for j in 0..=total {
            t[row][j] /= piv;
        }
        for i in 0..t.len() {
            if i != row && t[i][col].abs() > EPS {
                let f = t[i][col];
                for j in 0..=total {
                    t[i][j] -= f * t[row][j];
                }
            }
        }
        if cost[col].abs() > EPS {
            let f = cost[col];
            for j in 0..=total {
                cost[j] -= f * t[row][j];
            }
        }
        basis[row] = col;
    }

    fn pivot(
        t: &mut [Vec<f64>],
        cost: &mut [f64],
        basis: &mut [usize],
        row: usize,
        col: usize,
        total: usize,
    ) {
        Self::pivot_with_cost(t, cost, basis, row, col, total);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "expected {b}, got {a}");
    }

    #[test]
    fn simple_minimization() {
        // min x + y s.t. x + 2y >= 4, 3x + y >= 6.
        let mut lp = Lp::minimize(2, vec![1.0, 1.0]);
        lp.constraint(vec![1.0, 2.0], Cmp::Ge, 4.0);
        lp.constraint(vec![3.0, 1.0], Cmp::Ge, 6.0);
        let s = lp.solve().unwrap();
        // Optimum at intersection: x = 8/5, y = 6/5, objective 14/5.
        assert_close(s.objective, 14.0 / 5.0);
        assert_close(s.x[0], 8.0 / 5.0);
        assert_close(s.x[1], 6.0 / 5.0);
    }

    #[test]
    fn maximization_with_le() {
        // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6.
        let mut lp = Lp::maximize(2, vec![3.0, 2.0]);
        lp.constraint(vec![1.0, 1.0], Cmp::Le, 4.0);
        lp.constraint(vec![1.0, 3.0], Cmp::Le, 6.0);
        let s = lp.solve().unwrap();
        assert_close(s.objective, 12.0); // x=4, y=0.
    }

    #[test]
    fn equality_constraints() {
        // min 2x + 3y s.t. x + y = 10, x - y = 2  => x=6, y=4, obj=24.
        let mut lp = Lp::minimize(2, vec![2.0, 3.0]);
        lp.constraint(vec![1.0, 1.0], Cmp::Eq, 10.0);
        lp.constraint(vec![1.0, -1.0], Cmp::Eq, 2.0);
        let s = lp.solve().unwrap();
        assert_close(s.objective, 24.0);
        assert_close(s.x[0], 6.0);
        assert_close(s.x[1], 4.0);
    }

    #[test]
    fn infeasible_detected() {
        let mut lp = Lp::minimize(1, vec![1.0]);
        lp.constraint(vec![1.0], Cmp::Ge, 5.0);
        lp.constraint(vec![1.0], Cmp::Le, 3.0);
        assert!(lp.solve().is_err());
    }

    #[test]
    fn unbounded_detected() {
        let mut lp = Lp::minimize(1, vec![-1.0]);
        lp.constraint(vec![1.0], Cmp::Ge, 1.0);
        assert!(lp.solve().is_err());
    }

    #[test]
    fn negative_rhs_normalized() {
        // min x s.t. -x <= -3  (i.e. x >= 3).
        let mut lp = Lp::minimize(1, vec![1.0]);
        lp.constraint(vec![-1.0], Cmp::Le, -3.0);
        let s = lp.solve().unwrap();
        assert_close(s.x[0], 3.0);
    }

    #[test]
    fn triangle_cover_lp() {
        // Fractional edge cover of the triangle: three edges, each covering
        // two of three vertices; optimum 3/2 with weights 1/2.
        let mut lp = Lp::minimize(3, vec![1.0, 1.0, 1.0]);
        lp.constraint(vec![1.0, 0.0, 1.0], Cmp::Ge, 1.0); // x in R, T
        lp.constraint(vec![1.0, 1.0, 0.0], Cmp::Ge, 1.0); // y in R, S
        lp.constraint(vec![0.0, 1.0, 1.0], Cmp::Ge, 1.0); // z in S, T
        let s = lp.solve().unwrap();
        assert_close(s.objective, 1.5);
    }

    #[test]
    fn degenerate_redundant_rows() {
        // Duplicate equality rows should not break phase 1.
        let mut lp = Lp::minimize(2, vec![1.0, 0.0]);
        lp.constraint(vec![1.0, 1.0], Cmp::Eq, 2.0);
        lp.constraint(vec![1.0, 1.0], Cmp::Eq, 2.0);
        let s = lp.solve().unwrap();
        assert_close(s.objective, 0.0);
        assert_close(s.x[1], 2.0);
    }

    #[test]
    fn zero_variable_program() {
        let lp = Lp::minimize(0, vec![]);
        let s = lp.solve().unwrap();
        assert_close(s.objective, 0.0);
    }
}
