//! Fractional edge covers, cover numbers, slack and ρ⁺.

use crate::simplex::{Cmp, Lp};
use cqc_common::error::{CqcError, Result};
use cqc_query::{Hypergraph, VarSet};

/// A fractional edge cover: one weight per hyperedge.
#[derive(Debug, Clone, PartialEq)]
pub struct CoverSolution {
    /// Weight `u_F` per edge, indexed like `Hypergraph::edges`.
    pub weights: Vec<f64>,
    /// `Σ_F u_F`.
    pub total: f64,
}

impl CoverSolution {
    /// Verifies that the weights cover every variable of `targets` with
    /// total incident weight at least 1 (§2.1 condition (ii)).
    pub fn is_cover_of(&self, h: &Hypergraph, targets: VarSet) -> bool {
        targets.iter().all(|x| {
            let incident: f64 = h
                .edges()
                .iter()
                .zip(&self.weights)
                .filter(|(e, _)| e.contains(x))
                .map(|(_, w)| *w)
                .sum();
            incident >= 1.0 - 1e-6
        }) && self.weights.iter().all(|&w| w >= -1e-9)
    }
}

/// Minimum fractional edge cover of the variable set `targets`:
/// `min Σ u_F` s.t. every `x ∈ targets` has `Σ_{F ∋ x} u_F ≥ 1`, `u ≥ 0`.
///
/// Returns a zero cover when `targets` is empty.
///
/// # Errors
///
/// Fails when a target variable appears in no edge (the LP is infeasible).
pub fn min_fractional_edge_cover(h: &Hypergraph, targets: VarSet) -> Result<CoverSolution> {
    let m = h.num_edges();
    if targets.is_empty() {
        return Ok(CoverSolution {
            weights: vec![0.0; m],
            total: 0.0,
        });
    }
    for x in targets.iter() {
        if !h.edges().iter().any(|e| e.contains(x)) {
            return Err(CqcError::Lp(format!(
                "variable {x} is not covered by any hyperedge"
            )));
        }
    }
    let mut lp = Lp::minimize(m, vec![1.0; m]);
    for x in targets.iter() {
        let row: Vec<f64> = h
            .edges()
            .iter()
            .map(|e| if e.contains(x) { 1.0 } else { 0.0 })
            .collect();
        lp.constraint(row, Cmp::Ge, 1.0);
    }
    let s = lp.solve()?;
    Ok(CoverSolution {
        total: s.objective,
        weights: s.x,
    })
}

/// The fractional edge cover number `ρ*_H(S)` (§2.1).
pub fn rho_star(h: &Hypergraph, s: VarSet) -> Result<f64> {
    Ok(min_fractional_edge_cover(h, s)?.total)
}

/// The slack `α(S)` of a weight assignment for the set `S` (eq. 2):
/// `α(S) = min_{x ∈ S} Σ_{F ∋ x} u_F`.
///
/// Returns `1.0` when `S` is empty (the degenerate boolean-view case — the
/// paper's structures only divide by the slack, and `α ≥ 1` always holds for
/// covers, so 1 is the conservative choice).
pub fn slack(h: &Hypergraph, weights: &[f64], s: VarSet) -> f64 {
    assert_eq!(weights.len(), h.num_edges());
    if s.is_empty() {
        return 1.0;
    }
    s.iter()
        .map(|x| {
            h.edges()
                .iter()
                .zip(weights)
                .filter(|(e, _)| e.contains(x))
                .map(|(_, w)| *w)
                .sum::<f64>()
        })
        .fold(f64::INFINITY, f64::min)
}

/// Result of the ρ⁺ optimization (eq. 3).
#[derive(Debug, Clone)]
pub struct RhoPlus {
    /// `ρ⁺_t = min_u (Σ_F u_F − δ(t) · α(V_f^t))`.
    pub value: f64,
    /// The minimizing cover `u'` of the bag.
    pub weights: Vec<f64>,
    /// The slack of `u'` for the bag's free variables.
    pub alpha: f64,
    /// `u⁺_t = Σ_F u'_F` for the minimizing cover (used in Theorem 2's
    /// compression-time bound).
    pub u_plus: f64,
}

/// Computes `ρ⁺_t` (eq. 3) for a bag: minimize `Σ u_F − δ·α` over fractional
/// edge covers `u` of `bag` (using only the edges incident to the bag) with
/// `α ≤ Σ_{F ∋ x} u_F` for every free variable `x` of the bag.
///
/// Per Figure 5 the weights are capped at `u_F ≤ 1` and `1 ≤ α ≤ |E|`; these
/// caps keep the program bounded for every `δ ≥ 0`.
///
/// # Errors
///
/// Fails when some bag variable is not covered by any incident edge.
pub fn rho_plus(h: &Hypergraph, bag: VarSet, bag_free: VarSet, delta: f64) -> Result<RhoPlus> {
    assert!(bag_free.is_subset_of(bag));
    assert!(delta >= 0.0, "delay exponents are non-negative");
    let edge_ids = h.edges_incident(bag);
    if edge_ids.is_empty() {
        return Err(CqcError::Lp("bag is not covered by any edge".into()));
    }
    let k = edge_ids.len();
    let m_all = h.num_edges() as f64;

    // Variables: u_0..u_{k-1} (per incident edge, restricted to the bag),
    // then α.
    let mut obj = vec![1.0; k];
    obj.push(-delta);
    let mut lp = Lp::minimize(k + 1, obj);

    // Edges act on the bag through their intersection with it.
    let cover_row = |x| -> Vec<f64> {
        let mut row = vec![0.0; k + 1];
        for (j, &eid) in edge_ids.iter().enumerate() {
            if h.edges()[eid].intersect(bag).contains(x) {
                row[j] = 1.0;
            }
        }
        row
    };

    for x in bag.iter() {
        let row = cover_row(x);
        if row[..k].iter().all(|&c| c == 0.0) {
            return Err(CqcError::Lp(format!(
                "bag variable {x} is not covered by any incident edge"
            )));
        }
        lp.constraint(row, Cmp::Ge, 1.0);
    }
    for x in bag_free.iter() {
        let mut row = cover_row(x);
        row[k] = -1.0; // Σ u_F − α ≥ 0.
        lp.constraint(row, Cmp::Ge, 0.0);
    }
    // 1 ≤ α ≤ |E|.
    let mut row = vec![0.0; k + 1];
    row[k] = 1.0;
    lp.constraint(row.clone(), Cmp::Ge, 1.0);
    lp.constraint(row, Cmp::Le, m_all.max(1.0));
    // u_F ≤ 1.
    for j in 0..k {
        let mut row = vec![0.0; k + 1];
        row[j] = 1.0;
        lp.constraint(row, Cmp::Le, 1.0);
    }

    let s = lp.solve()?;
    let mut weights = vec![0.0; h.num_edges()];
    for (j, &eid) in edge_ids.iter().enumerate() {
        weights[eid] = s.x[j];
    }
    let u_plus = s.x[..k].iter().sum();
    Ok(RhoPlus {
        value: s.objective,
        weights,
        alpha: s.x[k],
        u_plus,
    })
}

/// Certifies optimality of a fractional edge cover value via LP duality:
/// the dual of the covering LP is a *fractional matching* (weights `y_x ≥ 0`
/// per target variable with `Σ_{x ∈ F} y_x ≤ 1` per edge), and any feasible
/// matching's total is a lower bound on every cover's total. This solves
/// the dual and checks that the two optima coincide (strong duality), which
/// pins `ρ*` from both sides — the certificate the AGM-bound literature
/// relies on.
///
/// Returns the maximum fractional matching value.
///
/// # Errors
///
/// Propagates LP failures.
pub fn max_fractional_matching(h: &Hypergraph, targets: VarSet) -> Result<f64> {
    if targets.is_empty() {
        return Ok(0.0);
    }
    let vars: Vec<_> = targets.iter().collect();
    let n = vars.len();
    let mut lp = Lp::maximize(n, vec![1.0; n]);
    for e in h.edges() {
        let row: Vec<f64> = vars
            .iter()
            .map(|x| if e.contains(*x) { 1.0 } else { 0.0 })
            .collect();
        lp.constraint(row, Cmp::Le, 1.0);
    }
    Ok(lp.solve()?.objective)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqc_query::Var;

    fn close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "expected {b}, got {a}");
    }

    fn vs(vars: &[u32]) -> VarSet {
        vars.iter().map(|&v| Var(v)).collect()
    }

    fn triangle() -> Hypergraph {
        Hypergraph::new(3, vec![vs(&[0, 1]), vs(&[1, 2]), vs(&[2, 0])])
    }

    /// Loomis–Whitney join LW_n: n edges, edge i = all vars except i.
    fn loomis_whitney(n: u32) -> Hypergraph {
        let all = VarSet::first_n(n as usize);
        let edges = (0..n).map(|i| all.without(Var(i))).collect();
        Hypergraph::new(n as usize, edges)
    }

    /// Star join S_n: edges {x_i, z} with z = Var(n).
    fn star(n: u32) -> Hypergraph {
        let edges = (0..n).map(|i| vs(&[i, n])).collect();
        Hypergraph::new(n as usize + 1, edges)
    }

    #[test]
    fn triangle_rho_star_is_three_halves() {
        let h = triangle();
        close(rho_star(&h, h.all_vars()).unwrap(), 1.5);
        let c = min_fractional_edge_cover(&h, h.all_vars()).unwrap();
        assert!(c.is_cover_of(&h, h.all_vars()));
        for w in &c.weights {
            close(*w, 0.5);
        }
    }

    #[test]
    fn lw_rho_star_matches_example_6() {
        // Example 6: ρ* = n/(n−1), weight 1/(n−1) per edge.
        for n in [3u32, 4, 5] {
            let h = loomis_whitney(n);
            close(
                rho_star(&h, h.all_vars()).unwrap(),
                f64::from(n) / f64::from(n - 1),
            );
        }
    }

    #[test]
    fn star_rho_star() {
        // Each leaf x_i needs its own edge: ρ* = n.
        for n in [2u32, 3, 4] {
            let h = star(n);
            close(rho_star(&h, h.all_vars()).unwrap(), f64::from(n));
        }
    }

    #[test]
    fn partial_target_sets() {
        let h = triangle();
        // Covering just {x} costs one edge... fractionally 1.
        close(rho_star(&h, vs(&[0])).unwrap(), 1.0);
        close(rho_star(&h, vs(&[0, 1])).unwrap(), 1.0);
        close(rho_star(&h, VarSet::EMPTY).unwrap(), 0.0);
    }

    #[test]
    fn uncovered_variable_is_an_error() {
        let h = Hypergraph::new(3, vec![vs(&[0, 1])]);
        assert!(min_fractional_edge_cover(&h, vs(&[2])).is_err());
    }

    #[test]
    fn slack_of_all_ones_triangle() {
        // Example: uR1 = uR2 = uR3 = 1 on the running example's free part
        // gives slack 2 (each free variable is covered twice).
        let h = triangle();
        let s = slack(&h, &[1.0, 1.0, 1.0], h.all_vars());
        close(s, 2.0);
        // Empty set: degenerate slack 1.
        close(slack(&h, &[1.0, 1.0, 1.0], VarSet::EMPTY), 1.0);
    }

    #[test]
    fn star_slack_matches_example_7() {
        // Example 7: u_i = 1 gives slack α(V_f) = n for V_f = {z}.
        for n in [2u32, 3, 4] {
            let h = star(n);
            let w = vec![1.0; n as usize];
            close(slack(&h, &w, VarSet::singleton(Var(n))), f64::from(n));
        }
    }

    /// Strong duality: ρ*(S) equals the maximum fractional matching on S —
    /// each certifies the other's optimality.
    #[test]
    fn duality_certifies_rho_star() {
        let cases: Vec<(Hypergraph, VarSet)> = vec![
            (triangle(), VarSet::first_n(3)),
            (loomis_whitney(3), VarSet::first_n(3)),
            (loomis_whitney(4), VarSet::first_n(4)),
            (star(3), VarSet::first_n(4)),
            (triangle(), vs(&[0, 1])),
        ];
        for (h, s) in cases {
            let cover = rho_star(&h, s).unwrap();
            let matching = max_fractional_matching(&h, s).unwrap();
            assert!(
                (cover - matching).abs() < 1e-6,
                "duality gap: cover {cover} vs matching {matching}"
            );
        }
        // Empty target set: both zero.
        assert_eq!(
            max_fractional_matching(&triangle(), VarSet::EMPTY).unwrap(),
            0.0
        );
    }

    #[test]
    fn rho_plus_zero_delta_is_rho_star() {
        let h = triangle();
        let rp = rho_plus(&h, h.all_vars(), h.all_vars(), 0.0).unwrap();
        close(rp.value, 1.5);
    }

    #[test]
    fn rho_plus_example_9_bags() {
        // Example 9: path of length 6, v1..v7 = Var(0)..Var(6).
        let h = Hypergraph::new(
            7,
            vec![
                vs(&[0, 1]),
                vs(&[1, 2]),
                vs(&[2, 3]),
                vs(&[3, 4]),
                vs(&[4, 5]),
                vs(&[5, 6]),
            ],
        );
        // Bag t1 = {v2, v4, v1, v5}, free {v2, v4}, δ = 1/3:
        // cover by {v1,v2} and {v4,v5} at weight 1 ⇒ ρ+ = 2 − 1/3 = 5/3.
        let rp = rho_plus(&h, vs(&[0, 1, 3, 4]), vs(&[1, 3]), 1.0 / 3.0).unwrap();
        close(rp.value, 5.0 / 3.0);
        close(rp.u_plus, 2.0);

        // Bag t2 = {v2, v3, v4}, free {v3}... the paper assigns 1/6 and gets
        // ρ+ = (1+1) − 1/6·2 = 5/3 — slack 2 because v3 sits in both edges.
        let rp = rho_plus(&h, vs(&[1, 2, 3]), vs(&[2]), 1.0 / 6.0).unwrap();
        close(rp.value, 5.0 / 3.0);
        close(rp.alpha, 2.0);
        close(rp.u_plus, 2.0);

        // Bag t3 = {v6, v7}, free {v7}, δ = 0 ⇒ ρ+ = 1.
        let rp = rho_plus(&h, vs(&[5, 6]), vs(&[6]), 0.0).unwrap();
        close(rp.value, 1.0);
        close(rp.u_plus, 1.0);
    }

    #[test]
    fn rho_plus_bounded_for_large_delta() {
        // The u ≤ 1, α ≤ |E| caps keep the program bounded even for δ > 1.
        let h = star(3);
        let rp = rho_plus(&h, h.all_vars(), VarSet::singleton(Var(3)), 2.0).unwrap();
        assert!(rp.value.is_finite());
        assert!(rp.alpha <= 3.0 + 1e-9);
    }
}
