//! Shared foundations for the `cqc` workspace.
//!
//! This crate hosts the small, dependency-free building blocks used by every
//! other crate in the workspace:
//!
//! * [`value`] — the domain value and tuple types together with the
//!   lexicographic comparisons that the paper's enumeration order is built on;
//! * [`hash`] — a fast FxHash-style hasher plus [`FastMap`]/[`FastSet`]
//!   aliases (the default SipHash tables are needlessly slow for the integer
//!   keys used throughout the join machinery);
//! * [`util`] — galloping (exponential) search and generic binary searches
//!   over monotone predicates, the workhorses of the trie cursors and the
//!   Lemma 3 split-point searches;
//! * [`error`] — the workspace-wide error type;
//! * [`metrics`] — cheap thread-local operation counters used by the
//!   benchmark harness to report machine-independent work measures;
//! * [`block`] — the flat [`AnswerBlock`] answer representation and the
//!   push-style [`AnswerSink`] trait every enumerator drives, the
//!   foundation of the allocation-free serve path;
//! * [`alloc`] — a vendored counting allocator that lets binaries and
//!   tests *prove* the zero-allocations-per-answer discipline;
//! * [`coverage`] — the per-shard coverage bitmap a degraded (partial)
//!   response carries so a missing replica group is explicit, never
//!   silent;
//! * [`frame`] — the `cqc-net` wire frame codec: length-prefixed
//!   versioned frames whose answer chunks are arity-strided value runs
//!   that decode straight into an [`AnswerBlock`].
//!
//! `unsafe` is denied crate-wide with a single scoped exception in
//! [`alloc`] (implementing `GlobalAlloc` requires it).

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;
pub mod block;
pub mod coverage;
pub mod error;
pub mod frame;
pub mod hash;
pub mod heap;
pub mod metrics;
pub mod util;
pub mod value;

pub use block::{AnswerBlock, AnswerSink, BlockMerger, CountingSink, ExistsSink, FnSink};
pub use coverage::Coverage;
pub use error::{CqcError, Result};
pub use hash::{FastHasher, FastMap, FastSet};
pub use heap::HeapSize;
pub use value::{lex_cmp, Tuple, Value};
