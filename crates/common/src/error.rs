//! The workspace-wide error type.

use std::fmt;

/// Errors produced anywhere in the `cqc` workspace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CqcError {
    /// The query text could not be parsed.
    Parse(String),
    /// A query is structurally invalid for the requested operation
    /// (e.g. a projection was supplied where a full CQ is required).
    InvalidQuery(String),
    /// A relation referenced by a query is missing from the database, or has
    /// the wrong arity.
    Schema(String),
    /// A tree decomposition failed validation.
    InvalidDecomposition(String),
    /// A linear program was infeasible or unbounded.
    Lp(String),
    /// An access request does not conform to the view's access pattern.
    InvalidAccess(String),
    /// A configuration parameter is out of range.
    Config(String),
    /// Building (or rebuilding) a registered view's compressed
    /// representation failed. Carries the view name and the strategy that
    /// was being applied, so serve-time failures are actionable without
    /// digging through engine state.
    ViewBuild {
        /// The registered view's name.
        view: String,
        /// Human-readable description of the strategy being applied.
        strategy: String,
        /// The underlying failure.
        source: Box<CqcError>,
    },
    /// A request referenced a view name that was never registered.
    UnknownView(String),
    /// An I/O operation failed (network or file). Carries the rendered
    /// `std::io::Error` — the original is neither `Clone` nor `PartialEq`,
    /// which this enum requires, so only the text survives.
    Io(String),
    /// A wire-protocol violation or a remote failure that arrived over the
    /// wire. `code` is a stable numeric identifier (see `frame::code`);
    /// `detail` is human-readable context.
    Protocol {
        /// Stable numeric error code carried in error frames.
        code: u16,
        /// Human-readable context.
        detail: String,
    },
}

impl CqcError {
    /// Wraps `self` in a [`CqcError::ViewBuild`] tagging the failing view
    /// and strategy.
    pub fn for_view(self, view: &str, strategy: &str) -> CqcError {
        CqcError::ViewBuild {
            view: view.to_string(),
            strategy: strategy.to_string(),
            source: Box::new(self),
        }
    }
}

impl fmt::Display for CqcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CqcError::Parse(m) => write!(f, "parse error: {m}"),
            CqcError::InvalidQuery(m) => write!(f, "invalid query: {m}"),
            CqcError::Schema(m) => write!(f, "schema error: {m}"),
            CqcError::InvalidDecomposition(m) => write!(f, "invalid decomposition: {m}"),
            CqcError::Lp(m) => write!(f, "linear program error: {m}"),
            CqcError::InvalidAccess(m) => write!(f, "invalid access request: {m}"),
            CqcError::Config(m) => write!(f, "configuration error: {m}"),
            CqcError::ViewBuild {
                view,
                strategy,
                source,
            } => write!(
                f,
                "building view `{view}` with strategy `{strategy}`: {source}"
            ),
            CqcError::UnknownView(name) => {
                write!(
                    f,
                    "unknown view `{name}`: register it before serving requests"
                )
            }
            CqcError::Io(m) => write!(f, "i/o error: {m}"),
            CqcError::Protocol { code, detail } => {
                write!(f, "protocol error (code {code}): {detail}")
            }
        }
    }
}

impl From<std::io::Error> for CqcError {
    fn from(e: std::io::Error) -> CqcError {
        CqcError::Io(format!("{e} ({:?})", e.kind()))
    }
}

impl std::error::Error for CqcError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CqcError::ViewBuild { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Workspace-wide result alias.
pub type Result<T> = std::result::Result<T, CqcError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_category_and_message() {
        let e = CqcError::Parse("unexpected token".into());
        assert_eq!(e.to_string(), "parse error: unexpected token");
        let e = CqcError::Lp("infeasible".into());
        assert!(e.to_string().contains("infeasible"));
    }

    #[test]
    fn view_build_carries_view_and_strategy() {
        let e = CqcError::Lp("infeasible".into()).for_view("mutual_friends", "auto → theorem-2");
        let msg = e.to_string();
        assert!(msg.contains("mutual_friends"), "{msg}");
        assert!(msg.contains("auto → theorem-2"), "{msg}");
        assert!(msg.contains("infeasible"), "{msg}");
        let e = CqcError::UnknownView("V".into());
        assert!(e.to_string().contains("`V`"));
    }

    #[test]
    fn view_build_source_is_walkable() {
        use std::error::Error;
        let e = CqcError::Schema("relation `S` not found".into()).for_view("v", "auto");
        let cause = e.source().expect("ViewBuild must expose its cause");
        assert!(cause.to_string().contains("not found"), "{cause}");
        assert!(CqcError::Parse("x".into()).source().is_none());
    }

    #[test]
    fn io_errors_convert_and_keep_the_kind() {
        let io = std::io::Error::new(std::io::ErrorKind::ConnectionReset, "peer went away");
        let e: CqcError = io.into();
        let msg = e.to_string();
        assert!(msg.starts_with("i/o error:"), "{msg}");
        assert!(msg.contains("peer went away"), "{msg}");
        assert!(msg.contains("ConnectionReset"), "{msg}");
    }

    #[test]
    fn protocol_errors_carry_code_and_detail() {
        let e = CqcError::Protocol {
            code: 104,
            detail: "shard 2 died mid-stream".into(),
        };
        let msg = e.to_string();
        assert!(msg.contains("code 104"), "{msg}");
        assert!(msg.contains("shard 2"), "{msg}");
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&CqcError::Config("tau must be >= 1".into()));
    }
}
