//! The workspace-wide error type.

use std::fmt;

/// Errors produced anywhere in the `cqc` workspace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CqcError {
    /// The query text could not be parsed.
    Parse(String),
    /// A query is structurally invalid for the requested operation
    /// (e.g. a projection was supplied where a full CQ is required).
    InvalidQuery(String),
    /// A relation referenced by a query is missing from the database, or has
    /// the wrong arity.
    Schema(String),
    /// A tree decomposition failed validation.
    InvalidDecomposition(String),
    /// A linear program was infeasible or unbounded.
    Lp(String),
    /// An access request does not conform to the view's access pattern.
    InvalidAccess(String),
    /// A configuration parameter is out of range.
    Config(String),
}

impl fmt::Display for CqcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CqcError::Parse(m) => write!(f, "parse error: {m}"),
            CqcError::InvalidQuery(m) => write!(f, "invalid query: {m}"),
            CqcError::Schema(m) => write!(f, "schema error: {m}"),
            CqcError::InvalidDecomposition(m) => write!(f, "invalid decomposition: {m}"),
            CqcError::Lp(m) => write!(f, "linear program error: {m}"),
            CqcError::InvalidAccess(m) => write!(f, "invalid access request: {m}"),
            CqcError::Config(m) => write!(f, "configuration error: {m}"),
        }
    }
}

impl std::error::Error for CqcError {}

/// Workspace-wide result alias.
pub type Result<T> = std::result::Result<T, CqcError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_category_and_message() {
        let e = CqcError::Parse("unexpected token".into());
        assert_eq!(e.to_string(), "parse error: unexpected token");
        let e = CqcError::Lp("infeasible".into());
        assert!(e.to_string().contains("infeasible"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&CqcError::Config("tau must be >= 1".into()));
    }
}
