//! The `cqc-net` wire frame codec.
//!
//! Lives next to [`crate::block`] because an [`AnswerBlock`] already *is*
//! the wire format: one arity-strided run of `u64` values. The protocol
//! adds the minimum around it — a length prefix, a version byte, a frame
//! kind, and little-endian integer payloads — so a shard server can stream
//! answer chunks that decode straight back into a block with a single
//! `extend_from_slice` per chunk ([`decode_chunk_into`]).
//!
//! # Frame layout (protocol version 1)
//!
//! ```text
//! | len: u32 le | version: u8 | kind: u8 | payload: len-2 bytes |
//! ```
//!
//! `len` counts everything after itself (version + kind + payload), so an
//! empty-payload frame has `len == 2`. Frames larger than the reader's
//! [`FrameLimits`] cap ([`MAX_FRAME`] by default, and always for
//! writers) are rejected before any allocation; a version byte other
//! than [`PROTOCOL_VERSION`] is a [`code::VERSION_MISMATCH`] protocol
//! error.
//!
//! Answer chunks ([`FrameKind::Chunk`]) carry
//! `u16 arity | u32 count | count*arity u64` — `count` is explicit so
//! zero-arity answers (all-bound views) survive the trip.
//!
//! Error frames ([`FrameKind::Error`]) carry `u16 code | str detail`,
//! with the code drawn from the [`code`] table; [`error_code`] and
//! [`decode_error`] map [`CqcError`] onto the table and back, so a remote
//! failure surfaces client-side as the same typed error a local call
//! would have produced.

use crate::block::AnswerBlock;
use crate::error::{CqcError, Result};
use crate::value::Value;
use std::io::{Read, Write};

/// The protocol version this build speaks (goes into every frame).
pub const PROTOCOL_VERSION: u8 = 1;

/// Upper bound on `len` (version + kind + payload bytes). Frames above
/// this are refused before any allocation — a corrupted or hostile length
/// prefix must not drive a 4 GiB `Vec` reservation. This is the
/// *default* for [`FrameLimits`]; deployments that know their answer
/// chunks are small can tighten it per reader.
pub const MAX_FRAME: usize = 64 * 1024 * 1024;

/// Per-reader framing bounds, so the 64 MiB default cap ([`MAX_FRAME`])
/// can be tightened where a peer is less trusted (or loosened never —
/// the constant stays the hard ceiling for writers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameLimits {
    max_frame: usize,
}

impl Default for FrameLimits {
    fn default() -> FrameLimits {
        FrameLimits {
            max_frame: MAX_FRAME,
        }
    }
}

impl FrameLimits {
    /// Limits with a custom frame cap (version + kind + payload bytes).
    /// Caps below 2 are raised to 2 — a frame can never be smaller than
    /// its version and kind bytes.
    pub fn with_max_frame(max_frame: usize) -> FrameLimits {
        FrameLimits {
            max_frame: max_frame.max(2),
        }
    }

    /// The largest acceptable `len` value (version + kind + payload).
    pub fn max_frame(&self) -> usize {
        self.max_frame
    }
}

/// Frame kinds. Requests use the low range, responses the high range, so
/// a trace is readable at a glance. The values are wire-stable: changing
/// one is a protocol version bump.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    /// Client → server: register a view (name, query text, pattern,
    /// strategy token).
    Register = 0x01,
    /// Client → server: serve one access request (view name, bound
    /// prefix values).
    Serve = 0x02,
    /// Client → server: apply a delta (relation groups of tuples).
    Update = 0x03,
    /// Client → server: liveness + version probe (empty payload).
    Health = 0x04,
    /// Server → client: registration succeeded (epoch vector).
    RegisterOk = 0x81,
    /// Server → client: one arity-strided run of answers.
    Chunk = 0x82,
    /// Server → client: answer stream complete (total count + epoch
    /// vector observed at serve time).
    ServeDone = 0x83,
    /// Server → client: update applied (epoch vector after).
    UpdateOk = 0x84,
    /// Server → client: alive (epoch vector).
    HealthOk = 0x85,
    /// Server → client: request failed (`u16 code | str detail`).
    Error = 0xEE,
}

impl FrameKind {
    /// Decodes a wire byte, or a [`code::BAD_FRAME`] protocol error.
    pub fn from_u8(b: u8) -> Result<FrameKind> {
        Ok(match b {
            0x01 => FrameKind::Register,
            0x02 => FrameKind::Serve,
            0x03 => FrameKind::Update,
            0x04 => FrameKind::Health,
            0x81 => FrameKind::RegisterOk,
            0x82 => FrameKind::Chunk,
            0x83 => FrameKind::ServeDone,
            0x84 => FrameKind::UpdateOk,
            0x85 => FrameKind::HealthOk,
            0xEE => FrameKind::Error,
            _ => {
                return Err(CqcError::Protocol {
                    code: code::BAD_FRAME,
                    detail: format!("unknown frame kind byte 0x{b:02x}"),
                })
            }
        })
    }
}

/// Stable numeric error codes carried in [`FrameKind::Error`] frames.
///
/// The low block mirrors the [`CqcError`] variants one-to-one; the
/// 100-block is transport-level conditions that have no local
/// counterpart. Codes are wire-stable: additions only.
pub mod code {
    /// [`CqcError::Parse`](super::CqcError::Parse).
    pub const PARSE: u16 = 1;
    /// [`CqcError::InvalidQuery`](super::CqcError::InvalidQuery).
    pub const INVALID_QUERY: u16 = 2;
    /// [`CqcError::Schema`](super::CqcError::Schema).
    pub const SCHEMA: u16 = 3;
    /// [`CqcError::InvalidDecomposition`](super::CqcError::InvalidDecomposition).
    pub const INVALID_DECOMPOSITION: u16 = 4;
    /// [`CqcError::Lp`](super::CqcError::Lp).
    pub const LP: u16 = 5;
    /// [`CqcError::InvalidAccess`](super::CqcError::InvalidAccess).
    pub const INVALID_ACCESS: u16 = 6;
    /// [`CqcError::Config`](super::CqcError::Config).
    pub const CONFIG: u16 = 7;
    /// [`CqcError::ViewBuild`](super::CqcError::ViewBuild) (flattened to
    /// its display text on the wire).
    pub const VIEW_BUILD: u16 = 8;
    /// [`CqcError::UnknownView`](super::CqcError::UnknownView).
    pub const UNKNOWN_VIEW: u16 = 9;
    /// [`CqcError::Io`](super::CqcError::Io) on the remote side.
    pub const IO: u16 = 10;
    /// Malformed frame: bad kind byte, truncated payload, oversized length.
    pub const BAD_FRAME: u16 = 100;
    /// Peer speaks a different [`PROTOCOL_VERSION`](super::PROTOCOL_VERSION).
    pub const VERSION_MISMATCH: u16 = 101;
    /// Server refused the request: in-flight queue full (backpressure).
    pub const REFUSED: u16 = 102;
    /// The per-request deadline elapsed before the stream completed.
    pub const DEADLINE: u16 = 103;
    /// A fan-out member failed mid-request (partial failure at the router).
    pub const SHARD_FAILED: u16 = 104;
    /// A shard's epoch vector disagreed with the router's expectation.
    pub const EPOCH_MISMATCH: u16 = 105;
    /// A degraded response: one or more replica groups were entirely
    /// unavailable, so the result covers only a subset of the shards.
    /// The detail names the missing shards; carriers attach the
    /// per-shard coverage bitmap (see `cqc_common::Coverage`).
    pub const DEGRADED: u16 = 106;
}

/// The wire code for an error (the inverse of [`decode_error`]).
pub fn error_code(e: &CqcError) -> u16 {
    match e {
        CqcError::Parse(_) => code::PARSE,
        CqcError::InvalidQuery(_) => code::INVALID_QUERY,
        CqcError::Schema(_) => code::SCHEMA,
        CqcError::InvalidDecomposition(_) => code::INVALID_DECOMPOSITION,
        CqcError::Lp(_) => code::LP,
        CqcError::InvalidAccess(_) => code::INVALID_ACCESS,
        CqcError::Config(_) => code::CONFIG,
        CqcError::ViewBuild { .. } => code::VIEW_BUILD,
        CqcError::UnknownView(_) => code::UNKNOWN_VIEW,
        CqcError::Io(_) => code::IO,
        CqcError::Protocol { code, .. } => *code,
    }
}

/// Reconstructs a [`CqcError`] from an error frame's code + detail.
///
/// Variants whose payload is a plain message round-trip exactly;
/// structured ones ([`CqcError::ViewBuild`]) and the transport codes come
/// back as [`CqcError::Protocol`] carrying the original code, so callers
/// can still match on the condition.
pub fn decode_error(code_: u16, detail: &str) -> CqcError {
    let d = detail.to_string();
    match code_ {
        code::PARSE => CqcError::Parse(d),
        code::INVALID_QUERY => CqcError::InvalidQuery(d),
        code::SCHEMA => CqcError::Schema(d),
        code::INVALID_DECOMPOSITION => CqcError::InvalidDecomposition(d),
        code::LP => CqcError::Lp(d),
        code::INVALID_ACCESS => CqcError::InvalidAccess(d),
        code::CONFIG => CqcError::Config(d),
        code::UNKNOWN_VIEW => CqcError::UnknownView(d),
        code::IO => CqcError::Io(d),
        _ => CqcError::Protocol {
            code: code_,
            detail: d,
        },
    }
}

/// Writes one frame: length prefix, version byte, kind byte, payload.
/// The caller flushes (streams batch several frames per flush).
pub fn write_frame(w: &mut impl Write, kind: FrameKind, payload: &[u8]) -> Result<()> {
    let body = payload.len() + 2;
    if body > MAX_FRAME {
        return Err(CqcError::Protocol {
            code: code::BAD_FRAME,
            detail: format!("frame of {body} bytes exceeds MAX_FRAME ({MAX_FRAME})"),
        });
    }
    w.write_all(&(body as u32).to_le_bytes())?;
    w.write_all(&[PROTOCOL_VERSION, kind as u8])?;
    w.write_all(payload)?;
    Ok(())
}

/// A reusable frame reader: one buffer, grown to the largest frame seen,
/// zero steady-state allocations per frame.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
    bytes_read: u64,
    limits: FrameLimits,
}

impl FrameReader {
    /// An empty reader with the default [`FrameLimits`].
    pub fn new() -> FrameReader {
        FrameReader::default()
    }

    /// An empty reader that refuses frames beyond `limits`.
    pub fn with_limits(limits: FrameLimits) -> FrameReader {
        FrameReader {
            limits,
            ..FrameReader::default()
        }
    }

    /// The framing bounds this reader enforces.
    pub fn limits(&self) -> FrameLimits {
        self.limits
    }

    /// Total payload-bearing bytes consumed so far (frame headers
    /// included) — the wire-traffic counter the bench profile reports.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// Reads one frame, returning its kind and payload (borrowed from the
    /// internal buffer, valid until the next call). Checks the length
    /// bound and the version byte; a clean EOF *before the length prefix*
    /// and a truncated frame both surface as [`CqcError::Io`], which the
    /// serving layers treat as "peer went away".
    pub fn read_frame(&mut self, r: &mut impl Read) -> Result<(FrameKind, &[u8])> {
        let mut len4 = [0u8; 4];
        r.read_exact(&mut len4)?;
        let body = u32::from_le_bytes(len4) as usize;
        let cap = self.limits.max_frame();
        if !(2..=cap).contains(&body) {
            return Err(CqcError::Protocol {
                code: code::BAD_FRAME,
                detail: format!("frame length {body} outside [2, {cap}]"),
            });
        }
        self.buf.clear();
        self.buf.resize(body, 0);
        r.read_exact(&mut self.buf)?;
        self.bytes_read += 4 + body as u64;
        if self.buf[0] != PROTOCOL_VERSION {
            return Err(CqcError::Protocol {
                code: code::VERSION_MISMATCH,
                detail: format!(
                    "peer speaks protocol version {}, this build speaks {PROTOCOL_VERSION}",
                    self.buf[0]
                ),
            });
        }
        let kind = FrameKind::from_u8(self.buf[1])?;
        Ok((kind, &self.buf[2..]))
    }
}

/// A reusable little-endian payload builder.
#[derive(Debug, Default)]
pub struct PayloadWriter {
    buf: Vec<u8>,
}

impl PayloadWriter {
    /// An empty writer.
    pub fn new() -> PayloadWriter {
        PayloadWriter::default()
    }

    /// Clears the buffer (capacity kept) and returns `self` for chaining.
    pub fn start(&mut self) -> &mut PayloadWriter {
        self.buf.clear();
        self
    }

    /// The encoded bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Appends a `u8`.
    pub fn put_u8(&mut self, v: u8) -> &mut PayloadWriter {
        self.buf.push(v);
        self
    }

    /// Appends a `u16` (little endian).
    pub fn put_u16(&mut self, v: u16) -> &mut PayloadWriter {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a `u32` (little endian).
    pub fn put_u32(&mut self, v: u32) -> &mut PayloadWriter {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a `u64` (little endian).
    pub fn put_u64(&mut self, v: u64) -> &mut PayloadWriter {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a length-prefixed UTF-8 string (`u32 len | bytes`).
    pub fn put_str(&mut self, s: &str) -> &mut PayloadWriter {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
        self
    }

    /// Appends a run of values without a count prefix (the caller encodes
    /// the count separately, as the chunk layout does).
    pub fn put_values(&mut self, values: &[Value]) -> &mut PayloadWriter {
        for &v in values {
            self.put_u64(v);
        }
        self
    }
}

/// A cursor over a received payload; every read is bounds-checked into a
/// [`code::BAD_FRAME`] protocol error rather than a panic, so a malformed
/// peer cannot take the server down.
#[derive(Debug)]
pub struct PayloadReader<'p> {
    buf: &'p [u8],
    pos: usize,
}

impl<'p> PayloadReader<'p> {
    /// A cursor at the start of `payload`.
    pub fn new(payload: &'p [u8]) -> PayloadReader<'p> {
        PayloadReader {
            buf: payload,
            pos: 0,
        }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'p [u8]> {
        if self.remaining() < n {
            return Err(CqcError::Protocol {
                code: code::BAD_FRAME,
                detail: format!(
                    "payload truncated: wanted {n} bytes, {} left",
                    self.remaining()
                ),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a `u8`.
    pub fn get_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn get_u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<&'p str> {
        let n = self.get_u32()? as usize;
        std::str::from_utf8(self.take(n)?).map_err(|e| CqcError::Protocol {
            code: code::BAD_FRAME,
            detail: format!("payload string is not UTF-8: {e}"),
        })
    }

    /// Reads `n` values into `out` (appending).
    pub fn get_values(&mut self, n: usize, out: &mut Vec<Value>) -> Result<()> {
        out.reserve(n);
        for _ in 0..n {
            out.push(self.get_u64()?);
        }
        Ok(())
    }
}

/// Encodes a run of answers from `block[start..start + count]` as a
/// [`FrameKind::Chunk`] payload into `w` (cleared first):
/// `u16 arity | u32 count | count*arity u64`.
pub fn encode_chunk(w: &mut PayloadWriter, block: &AnswerBlock, start: usize, count: usize) {
    let arity = block.arity();
    w.start().put_u16(arity as u16).put_u32(count as u32);
    w.put_values(&block.values()[start * arity..(start + count) * arity]);
}

/// Decodes a [`FrameKind::Chunk`] payload, appending its answers to
/// `block`. The values land via one flat `extend` — no per-tuple work
/// beyond the little-endian conversion.
pub fn decode_chunk_into(payload: &[u8], block: &mut AnswerBlock) -> Result<usize> {
    let mut r = PayloadReader::new(payload);
    let arity = r.get_u16()? as usize;
    let count = r.get_u32()? as usize;
    let want = arity * count * 8;
    if r.remaining() != want {
        return Err(CqcError::Protocol {
            code: code::BAD_FRAME,
            detail: format!(
                "chunk claims {count} answers of arity {arity} ({want} value bytes) but carries {}",
                r.remaining()
            ),
        });
    }
    let mut flat: Vec<Value> = Vec::new();
    r.get_values(arity * count, &mut flat)?;
    block.extend_flat(arity, count, &flat);
    Ok(count)
}

/// Encodes an epoch vector (`u32 n | n×u64`) — the versioning handshake
/// attached to every response frame.
pub fn encode_epochs(w: &mut PayloadWriter, epochs: &[u64]) {
    w.put_u32(epochs.len() as u32);
    for &e in epochs {
        w.put_u64(e);
    }
}

/// Decodes an epoch vector written by [`encode_epochs`].
pub fn decode_epochs(r: &mut PayloadReader<'_>) -> Result<Vec<u64>> {
    let n = r.get_u32()? as usize;
    let mut out = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        out.push(r.get_u64()?);
    }
    Ok(out)
}

/// The priority class a serve request declares in its optional tail.
///
/// Classes order admission under overload: when the server's wait queue
/// is full or a sustained brownout is in effect, lower classes are shed
/// first. The wire bytes are stable — additions only.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum ServePriority {
    /// Latency-sensitive foreground traffic. Shed last. The default:
    /// a tail-less v1 serve means `{Interactive, unbounded}`.
    #[default]
    Interactive = 0,
    /// Throughput-oriented background traffic. Shed first under
    /// sustained overload (brownout).
    Batch = 1,
    /// Fleet-internal traffic (probes, resyncs). Between the two: it
    /// yields to Interactive but outranks Batch.
    Internal = 2,
}

impl ServePriority {
    /// Decodes a wire byte, or a [`code::BAD_FRAME`] protocol error —
    /// an unknown class from a newer peer must surface as a typed
    /// reject, never a silent default.
    pub fn from_u8(b: u8) -> Result<ServePriority> {
        Ok(match b {
            0 => ServePriority::Interactive,
            1 => ServePriority::Batch,
            2 => ServePriority::Internal,
            _ => {
                return Err(CqcError::Protocol {
                    code: code::BAD_FRAME,
                    detail: format!("unknown serve priority byte 0x{b:02x}"),
                })
            }
        })
    }

    /// How strongly this class resists shedding (higher sheds later).
    /// Interactive outranks Internal outranks Batch.
    pub fn shed_rank(self) -> u8 {
        match self {
            ServePriority::Interactive => 2,
            ServePriority::Internal => 1,
            ServePriority::Batch => 0,
        }
    }
}

/// On-the-wire sentinel for "no deadline" in a serve tail's budget
/// field; any other value is the remaining budget in nanoseconds.
pub const BUDGET_UNBOUNDED: u64 = u64::MAX;

/// The optional serve tail: a priority class plus the caller's
/// *remaining* deadline budget at send time, in nanoseconds.
///
/// Wire layout (9 bytes, appended after the bound values):
/// `u8 priority | u64 budget_ns` — with [`BUDGET_UNBOUNDED`] standing
/// for "priority declared, no deadline". A tail-less serve payload is
/// byte-identical to protocol v1 and means
/// `{ Interactive, unbounded }`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeTail {
    /// The declared priority class.
    pub priority: ServePriority,
    /// Remaining deadline budget in nanoseconds, if any.
    pub budget_ns: Option<u64>,
}

/// Encodes a serve tail (the inverse of [`decode_serve_tail`]).
pub fn encode_serve_tail(w: &mut PayloadWriter, tail: &ServeTail) {
    w.put_u8(tail.priority as u8);
    // A real budget of u64::MAX ns (585 years) is indistinguishable
    // from the sentinel; clamp it down one so the sentinel stays
    // unambiguous on the wire.
    w.put_u64(match tail.budget_ns {
        Some(ns) => ns.min(BUDGET_UNBOUNDED - 1),
        None => BUDGET_UNBOUNDED,
    });
}

/// Decodes a serve tail written by [`encode_serve_tail`]. Truncated
/// bytes and unknown priority classes are typed [`code::BAD_FRAME`]
/// errors, not panics or silent defaults.
pub fn decode_serve_tail(r: &mut PayloadReader<'_>) -> Result<ServeTail> {
    let priority = ServePriority::from_u8(r.get_u8()?)?;
    let budget = r.get_u64()?;
    Ok(ServeTail {
        priority,
        budget_ns: (budget != BUDGET_UNBOUNDED).then_some(budget),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::AnswerSink;

    #[test]
    fn frames_round_trip() {
        let mut wire = Vec::new();
        write_frame(&mut wire, FrameKind::Health, &[]).unwrap();
        write_frame(&mut wire, FrameKind::Serve, b"payload").unwrap();
        let mut r = FrameReader::new();
        let mut cursor = &wire[..];
        let (k, p) = r.read_frame(&mut cursor).unwrap();
        assert_eq!(k, FrameKind::Health);
        assert!(p.is_empty());
        let (k, p) = r.read_frame(&mut cursor).unwrap();
        assert_eq!(k, FrameKind::Serve);
        assert_eq!(p, b"payload");
        assert_eq!(r.bytes_read(), wire.len() as u64);
        // EOF surfaces as Io.
        assert!(matches!(r.read_frame(&mut cursor), Err(CqcError::Io(_))));
    }

    #[test]
    fn version_mismatch_is_typed() {
        let mut wire = Vec::new();
        write_frame(&mut wire, FrameKind::Health, &[]).unwrap();
        wire[4] = PROTOCOL_VERSION + 1; // corrupt the version byte
        let err = FrameReader::new().read_frame(&mut &wire[..]).unwrap_err();
        assert!(
            matches!(
                err,
                CqcError::Protocol {
                    code: code::VERSION_MISMATCH,
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn bad_kind_and_bad_length_are_typed() {
        let mut wire = Vec::new();
        write_frame(&mut wire, FrameKind::Health, &[]).unwrap();
        wire[5] = 0x7F; // unknown kind byte
        let err = FrameReader::new().read_frame(&mut &wire[..]).unwrap_err();
        assert!(
            matches!(
                err,
                CqcError::Protocol {
                    code: code::BAD_FRAME,
                    ..
                }
            ),
            "{err}"
        );

        let wire = 1u32.to_le_bytes(); // body length 1 < 2
        let err = FrameReader::new().read_frame(&mut &wire[..]).unwrap_err();
        assert!(
            matches!(
                err,
                CqcError::Protocol {
                    code: code::BAD_FRAME,
                    ..
                }
            ),
            "{err}"
        );

        let wire = ((MAX_FRAME + 1) as u32).to_le_bytes();
        let err = FrameReader::new().read_frame(&mut &wire[..]).unwrap_err();
        assert!(
            matches!(
                err,
                CqcError::Protocol {
                    code: code::BAD_FRAME,
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn hostile_frames_are_typed_not_hung() {
        // A zero-length prefix is rejected before any payload read (body
        // must carry at least version + kind).
        let wire = 0u32.to_le_bytes();
        let err = FrameReader::new().read_frame(&mut &wire[..]).unwrap_err();
        assert!(
            matches!(
                err,
                CqcError::Protocol {
                    code: code::BAD_FRAME,
                    ..
                }
            ),
            "zero-length frame: {err}"
        );

        // An oversized length prefix (u32::MAX, far past the 64 MiB cap)
        // is rejected from the 4-byte prefix alone — before any
        // allocation or payload read could be sized by attacker input.
        let wire = u32::MAX.to_le_bytes();
        let err = FrameReader::new().read_frame(&mut &wire[..]).unwrap_err();
        assert!(
            matches!(
                err,
                CqcError::Protocol {
                    code: code::BAD_FRAME,
                    ..
                }
            ),
            "oversized frame: {err}"
        );

        // A truncated payload — the prefix promises 100 bytes, the
        // stream ends after 10 — surfaces as a typed Io ("peer went
        // away"), never a hang or a panic.
        let mut wire = Vec::new();
        wire.extend_from_slice(&100u32.to_le_bytes());
        wire.extend_from_slice(&[PROTOCOL_VERSION, FrameKind::Health as u8]);
        wire.extend_from_slice(&[0u8; 8]);
        let err = FrameReader::new().read_frame(&mut &wire[..]).unwrap_err();
        assert!(matches!(err, CqcError::Io(_)), "truncated payload: {err}");

        // An unknown kind byte in an otherwise well-formed frame is a
        // typed BAD_FRAME naming the byte.
        let mut wire = Vec::new();
        write_frame(&mut wire, FrameKind::Health, &[]).unwrap();
        wire[5] = 0x42;
        let err = FrameReader::new().read_frame(&mut &wire[..]).unwrap_err();
        assert!(
            matches!(
                err,
                CqcError::Protocol {
                    code: code::BAD_FRAME,
                    ..
                }
            ),
            "unknown kind: {err}"
        );
    }

    #[test]
    fn frame_limits_default_to_the_wire_constant() {
        assert_eq!(FrameLimits::default().max_frame(), MAX_FRAME);
        assert_eq!(FrameReader::new().limits(), FrameLimits::default());
        // A cap below the version + kind floor is raised to the floor.
        assert_eq!(FrameLimits::with_max_frame(0).max_frame(), 2);
    }

    #[test]
    fn frame_exactly_at_the_cap_is_accepted() {
        let cap = 64usize;
        let payload = vec![0xABu8; cap - 2]; // len == cap exactly
        let mut wire = Vec::new();
        write_frame(&mut wire, FrameKind::Serve, &payload).unwrap();
        let mut r = FrameReader::with_limits(FrameLimits::with_max_frame(cap));
        let (k, p) = r.read_frame(&mut &wire[..]).unwrap();
        assert_eq!(k, FrameKind::Serve);
        assert_eq!(p, &payload[..]);
    }

    #[test]
    fn frame_one_past_the_cap_is_a_typed_bad_frame() {
        let cap = 64usize;
        let payload = vec![0xABu8; cap - 1]; // len == cap + 1
        let mut wire = Vec::new();
        write_frame(&mut wire, FrameKind::Serve, &payload).unwrap();
        let mut r = FrameReader::with_limits(FrameLimits::with_max_frame(cap));
        let err = r.read_frame(&mut &wire[..]).unwrap_err();
        assert!(
            matches!(
                err,
                CqcError::Protocol {
                    code: code::BAD_FRAME,
                    ..
                }
            ),
            "cap+1: {err}"
        );
        // The same bytes pass under the default cap: the bound is the
        // reader's configuration, not the frame.
        let (k, _) = FrameReader::new().read_frame(&mut &wire[..]).unwrap();
        assert_eq!(k, FrameKind::Serve);
    }

    #[test]
    fn payload_primitives_round_trip() {
        let mut w = PayloadWriter::new();
        w.start()
            .put_u8(7)
            .put_u16(300)
            .put_u32(70_000)
            .put_u64(1 << 40)
            .put_str("view_name")
            .put_values(&[1, 2, 3]);
        let mut r = PayloadReader::new(w.bytes());
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u16().unwrap(), 300);
        assert_eq!(r.get_u32().unwrap(), 70_000);
        assert_eq!(r.get_u64().unwrap(), 1 << 40);
        assert_eq!(r.get_str().unwrap(), "view_name");
        let mut vals = Vec::new();
        r.get_values(3, &mut vals).unwrap();
        assert_eq!(vals, vec![1, 2, 3]);
        assert_eq!(r.remaining(), 0);
        // Over-reads are typed, not panics.
        assert!(matches!(
            r.get_u64(),
            Err(CqcError::Protocol {
                code: code::BAD_FRAME,
                ..
            })
        ));
    }

    #[test]
    fn chunks_round_trip_through_blocks() {
        let mut src = AnswerBlock::new();
        for i in 0..10u64 {
            src.push(&[i, i * i]);
        }
        let mut w = PayloadWriter::new();
        let mut dst = AnswerBlock::new();
        encode_chunk(&mut w, &src, 0, 4);
        assert_eq!(decode_chunk_into(w.bytes(), &mut dst).unwrap(), 4);
        encode_chunk(&mut w, &src, 4, 6);
        assert_eq!(decode_chunk_into(w.bytes(), &mut dst).unwrap(), 6);
        assert_eq!(dst.len(), src.len());
        assert_eq!(dst.values(), src.values());
    }

    #[test]
    fn zero_arity_chunks_carry_counts() {
        let mut src = AnswerBlock::new();
        src.push(&[]);
        src.push(&[]);
        let mut w = PayloadWriter::new();
        encode_chunk(&mut w, &src, 0, 2);
        let mut dst = AnswerBlock::new();
        assert_eq!(decode_chunk_into(w.bytes(), &mut dst).unwrap(), 2);
        assert_eq!(dst.len(), 2);
        assert_eq!(dst.arity(), 0);
    }

    #[test]
    fn ragged_chunk_is_rejected() {
        let mut w = PayloadWriter::new();
        w.start().put_u16(2).put_u32(3).put_values(&[1, 2, 3]); // 3 answers claimed, 1.5 sent
        let err = decode_chunk_into(w.bytes(), &mut AnswerBlock::new()).unwrap_err();
        assert!(
            matches!(
                err,
                CqcError::Protocol {
                    code: code::BAD_FRAME,
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn error_codes_round_trip() {
        let cases = vec![
            CqcError::Parse("x".into()),
            CqcError::InvalidQuery("x".into()),
            CqcError::Schema("x".into()),
            CqcError::InvalidDecomposition("x".into()),
            CqcError::Lp("x".into()),
            CqcError::InvalidAccess("x".into()),
            CqcError::Config("x".into()),
            CqcError::UnknownView("x".into()),
            CqcError::Io("x".into()),
        ];
        for e in cases {
            let decoded = decode_error(error_code(&e), "x");
            assert_eq!(decoded, e, "{e}");
        }
        // Structured and transport codes survive as Protocol with the code.
        let vb = CqcError::Lp("no".into()).for_view("v", "auto");
        let decoded = decode_error(error_code(&vb), &vb.to_string());
        assert!(
            matches!(
                decoded,
                CqcError::Protocol {
                    code: code::VIEW_BUILD,
                    ..
                }
            ),
            "{decoded}"
        );
        let p = CqcError::Protocol {
            code: code::DEADLINE,
            detail: "too slow".into(),
        };
        assert_eq!(decode_error(error_code(&p), "too slow"), p);
    }

    #[test]
    fn serve_tails_round_trip() {
        let cases = [
            ServeTail {
                priority: ServePriority::Interactive,
                budget_ns: Some(1_500_000),
            },
            ServeTail {
                priority: ServePriority::Batch,
                budget_ns: None,
            },
            ServeTail {
                priority: ServePriority::Internal,
                budget_ns: Some(0),
            },
        ];
        let mut w = PayloadWriter::new();
        for tail in cases {
            encode_serve_tail(w.start(), &tail);
            assert_eq!(w.bytes().len(), 9, "tail is fixed-width");
            let mut r = PayloadReader::new(w.bytes());
            assert_eq!(decode_serve_tail(&mut r).unwrap(), tail);
            assert_eq!(r.remaining(), 0);
        }
        // A budget colliding with the sentinel is clamped, not
        // reinterpreted as "unbounded".
        encode_serve_tail(
            w.start(),
            &ServeTail {
                priority: ServePriority::Interactive,
                budget_ns: Some(BUDGET_UNBOUNDED),
            },
        );
        let mut r = PayloadReader::new(w.bytes());
        assert_eq!(
            decode_serve_tail(&mut r).unwrap().budget_ns,
            Some(BUDGET_UNBOUNDED - 1)
        );
    }

    #[test]
    fn truncated_serve_tail_is_a_typed_bad_frame() {
        let mut w = PayloadWriter::new();
        encode_serve_tail(
            w.start(),
            &ServeTail {
                priority: ServePriority::Batch,
                budget_ns: Some(77),
            },
        );
        // Every proper prefix of the 9-byte tail must be refused — a
        // peer that dies mid-write cannot leave the parser hanging or
        // defaulting.
        for cut in 0..w.bytes().len() {
            let mut r = PayloadReader::new(&w.bytes()[..cut]);
            let err = decode_serve_tail(&mut r).unwrap_err();
            assert!(
                matches!(
                    err,
                    CqcError::Protocol {
                        code: code::BAD_FRAME,
                        ..
                    }
                ),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn garbage_priority_byte_is_a_typed_bad_frame() {
        for bad in [3u8, 0x7F, 0xFF] {
            let mut w = PayloadWriter::new();
            w.start().put_u8(bad).put_u64(1_000);
            let mut r = PayloadReader::new(w.bytes());
            let err = decode_serve_tail(&mut r).unwrap_err();
            assert!(
                matches!(
                    err,
                    CqcError::Protocol {
                        code: code::BAD_FRAME,
                        ..
                    }
                ),
                "priority byte 0x{bad:02x}: {err}"
            );
        }
        assert!(ServePriority::from_u8(3).is_err());
        for p in [
            ServePriority::Interactive,
            ServePriority::Batch,
            ServePriority::Internal,
        ] {
            assert_eq!(ServePriority::from_u8(p as u8).unwrap(), p);
        }
    }

    #[test]
    fn epoch_vectors_round_trip() {
        let mut w = PayloadWriter::new();
        encode_epochs(w.start(), &[3, 1, 4, 1]);
        let mut r = PayloadReader::new(w.bytes());
        assert_eq!(decode_epochs(&mut r).unwrap(), vec![3, 1, 4, 1]);
        encode_epochs(w.start(), &[]);
        let mut r = PayloadReader::new(w.bytes());
        assert!(decode_epochs(&mut r).unwrap().is_empty());
    }
}
