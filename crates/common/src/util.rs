//! Search primitives shared across the workspace.
//!
//! Trie cursors (`cqc-join`) and count indexes (`cqc-storage`) repeatedly
//! locate boundaries inside sorted runs; the Lemma 3 split-point search in
//! `cqc-core` binary-searches a monotone real-valued function over a sorted
//! domain. Everything funnels through the helpers in this module.

/// Returns the index of the first element in `data[lo..hi]` that is `>= key`,
/// or `hi` if none is.
///
/// Plain binary search; used when the caller has no positional hint.
#[inline]
pub fn lower_bound(data: &[u64], lo: usize, hi: usize, key: u64) -> usize {
    debug_assert!(lo <= hi && hi <= data.len());
    let mut lo = lo;
    let mut hi = hi;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if data[mid] < key {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Returns the index of the first element in `data[lo..hi]` that is `> key`,
/// or `hi` if none is.
#[inline]
pub fn upper_bound(data: &[u64], lo: usize, hi: usize, key: u64) -> usize {
    debug_assert!(lo <= hi && hi <= data.len());
    let mut lo = lo;
    let mut hi = hi;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if data[mid] <= key {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Galloping (exponential) search: the index of the first element in
/// `data[lo..hi]` that is `>= key`, assuming the answer is usually close to
/// `lo`.
///
/// This is the access pattern of leapfrog trie-join — each seek advances a
/// cursor by a usually-small amount — where galloping gives the
/// amortized-logarithmic bounds of the worst-case-optimal join analysis.
#[inline]
pub fn gallop(data: &[u64], lo: usize, hi: usize, key: u64) -> usize {
    debug_assert!(lo <= hi && hi <= data.len());
    if lo >= hi || data[lo] >= key {
        return lo;
    }
    // Invariant: data[lo + step/2] < key (for the previous step).
    let mut step = 1usize;
    while lo + step < hi && data[lo + step] < key {
        step <<= 1;
    }
    let new_lo = lo + step / 2 + 1;
    let new_hi = (lo + step + 1).min(hi);
    lower_bound(data, new_lo, new_hi, key)
}

/// Binary search for the smallest index `i` in `[lo, hi)` such that
/// `pred(i)` is `true`, under the assumption that `pred` is monotone
/// (`false … false true … true`). Returns `hi` when `pred` is `false`
/// everywhere.
///
/// This drives the Lemma 3 search for the split value `β`: the predicate
/// "`T(⟨prefix, [⊥, dom[i]]⟩) ≥ target`" is monotone in `i` because `T` is
/// non-decreasing as the interval grows.
#[inline]
pub fn partition_point<P: FnMut(usize) -> bool>(lo: usize, hi: usize, mut pred: P) -> usize {
    let mut lo = lo;
    let mut hi = hi;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if pred(mid) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    lo
}

/// Approximate comparison for the floating-point `T(·)` estimates.
///
/// Counts are integers but the exponents `û_F = u_F / α` are rationals, so
/// the estimates carry `powf` rounding noise; all threshold comparisons in
/// `cqc-core` go through this epsilon.
pub const F64_EPS: f64 = 1e-9;

/// `a > b` up to [`F64_EPS`] relative tolerance.
#[inline]
pub fn approx_gt(a: f64, b: f64) -> bool {
    a > b + F64_EPS * (1.0 + a.abs().max(b.abs()))
}

/// `a >= b` up to [`F64_EPS`] relative tolerance.
#[inline]
pub fn approx_ge(a: f64, b: f64) -> bool {
    a >= b - F64_EPS * (1.0 + a.abs().max(b.abs()))
}

/// `|a - b|` within [`F64_EPS`] relative tolerance.
#[inline]
pub fn approx_eq(a: f64, b: f64) -> bool {
    (a - b).abs() <= F64_EPS * (1.0 + a.abs().max(b.abs()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_match_std_partition() {
        let data = [1u64, 3, 3, 3, 7, 9];
        assert_eq!(lower_bound(&data, 0, data.len(), 0), 0);
        assert_eq!(lower_bound(&data, 0, data.len(), 3), 1);
        assert_eq!(lower_bound(&data, 0, data.len(), 4), 4);
        assert_eq!(lower_bound(&data, 0, data.len(), 10), 6);
        assert_eq!(upper_bound(&data, 0, data.len(), 3), 4);
        assert_eq!(upper_bound(&data, 0, data.len(), 9), 6);
        assert_eq!(upper_bound(&data, 0, data.len(), 0), 0);
    }

    #[test]
    fn bounds_respect_subranges() {
        let data = [1u64, 3, 3, 3, 7, 9];
        assert_eq!(lower_bound(&data, 2, 5, 3), 2);
        assert_eq!(upper_bound(&data, 2, 5, 3), 4);
        assert_eq!(lower_bound(&data, 4, 4, 3), 4);
    }

    #[test]
    fn gallop_agrees_with_lower_bound() {
        let data: Vec<u64> = (0..1000).map(|i| i * 3).collect();
        for lo in [0usize, 1, 17, 500, 998] {
            for key in [0u64, 1, 2, 3, 100, 1500, 2997, 2998, 5000] {
                assert_eq!(
                    gallop(&data, lo, data.len(), key),
                    lower_bound(&data, lo, data.len(), key),
                    "lo={lo} key={key}"
                );
            }
        }
    }

    #[test]
    fn gallop_on_empty_and_single() {
        let data = [5u64];
        assert_eq!(gallop(&data, 0, 0, 3), 0);
        assert_eq!(gallop(&data, 0, 1, 3), 0);
        assert_eq!(gallop(&data, 0, 1, 5), 0);
        assert_eq!(gallop(&data, 0, 1, 6), 1);
    }

    #[test]
    fn partition_point_finds_threshold() {
        // pred(i) = i >= 42
        assert_eq!(partition_point(0, 100, |i| i >= 42), 42);
        assert_eq!(partition_point(0, 100, |_| true), 0);
        assert_eq!(partition_point(0, 100, |_| false), 100);
        assert_eq!(partition_point(10, 10, |_| true), 10);
    }

    #[test]
    fn approx_comparisons() {
        assert!(approx_eq(1.0, 1.0 + 1e-12));
        assert!(!approx_eq(1.0, 1.001));
        assert!(approx_gt(1.001, 1.0));
        assert!(!approx_gt(1.0 + 1e-12, 1.0));
        assert!(approx_ge(1.0, 1.0 + 1e-12));
    }
}
