//! Thread-local operation counters.
//!
//! Wall-clock time is noisy and machine dependent; the benchmark harness
//! additionally reports *work* counters (trie seeks, count-index probes,
//! dictionary lookups) so that the scaling shapes claimed by the paper can be
//! verified independently of the host. Counting uses plain `Cell`s in
//! thread-local storage and costs a few nanoseconds per increment; the
//! counters are always compiled in.

use std::cell::Cell;

thread_local! {
    static TRIE_SEEKS: Cell<u64> = const { Cell::new(0) };
    static COUNT_PROBES: Cell<u64> = const { Cell::new(0) };
    static DICT_LOOKUPS: Cell<u64> = const { Cell::new(0) };
    static TUPLES_OUTPUT: Cell<u64> = const { Cell::new(0) };
}

/// A snapshot of all counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Number of trie cursor seek/next operations performed by joins.
    pub trie_seeks: u64,
    /// Number of range-count probes against sorted indexes.
    pub count_probes: u64,
    /// Number of heavy-pair dictionary lookups.
    pub dict_lookups: u64,
    /// Number of output tuples produced by enumerators.
    pub tuples_output: u64,
}

impl MetricsSnapshot {
    /// Componentwise difference `self - earlier`, saturating at zero.
    pub fn delta_since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            trie_seeks: self.trie_seeks.saturating_sub(earlier.trie_seeks),
            count_probes: self.count_probes.saturating_sub(earlier.count_probes),
            dict_lookups: self.dict_lookups.saturating_sub(earlier.dict_lookups),
            tuples_output: self.tuples_output.saturating_sub(earlier.tuples_output),
        }
    }

    /// Total work units (sum of all counters except output tuples).
    pub fn work(&self) -> u64 {
        self.trie_seeks + self.count_probes + self.dict_lookups
    }
}

/// Records `n` trie seek operations.
#[inline]
pub fn record_trie_seeks(n: u64) {
    TRIE_SEEKS.with(|c| c.set(c.get() + n));
}

/// Records a count-index probe.
#[inline]
pub fn record_count_probe() {
    COUNT_PROBES.with(|c| c.set(c.get() + 1));
}

/// Records a dictionary lookup.
#[inline]
pub fn record_dict_lookup() {
    DICT_LOOKUPS.with(|c| c.set(c.get() + 1));
}

/// Records an output tuple.
#[inline]
pub fn record_tuple_output() {
    TUPLES_OUTPUT.with(|c| c.set(c.get() + 1));
}

/// Reads the current counter values.
pub fn snapshot() -> MetricsSnapshot {
    MetricsSnapshot {
        trie_seeks: TRIE_SEEKS.with(Cell::get),
        count_probes: COUNT_PROBES.with(Cell::get),
        dict_lookups: DICT_LOOKUPS.with(Cell::get),
        tuples_output: TUPLES_OUTPUT.with(Cell::get),
    }
}

/// Resets all counters to zero (per thread).
pub fn reset() {
    TRIE_SEEKS.with(|c| c.set(0));
    COUNT_PROBES.with(|c| c.set(0));
    DICT_LOOKUPS.with(|c| c.set(0));
    TUPLES_OUTPUT.with(|c| c.set(0));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        reset();
        record_trie_seeks(3);
        record_count_probe();
        record_dict_lookup();
        record_dict_lookup();
        record_tuple_output();
        let s = snapshot();
        assert_eq!(s.trie_seeks, 3);
        assert_eq!(s.count_probes, 1);
        assert_eq!(s.dict_lookups, 2);
        assert_eq!(s.tuples_output, 1);
        assert_eq!(s.work(), 6);
        reset();
        assert_eq!(snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn delta_since_subtracts() {
        reset();
        record_trie_seeks(5);
        let a = snapshot();
        record_trie_seeks(7);
        let b = snapshot();
        assert_eq!(b.delta_since(&a).trie_seeks, 7);
    }
}
