//! Thread-local operation counters.
//!
//! Wall-clock time is noisy and machine dependent; the benchmark harness
//! additionally reports *work* counters (trie seeks, count-index probes,
//! dictionary lookups) so that the scaling shapes claimed by the paper can be
//! verified independently of the host. Counting uses plain `Cell`s in
//! thread-local storage and costs a few nanoseconds per increment; those
//! counters are always compiled in because they sit on the *search* side of
//! the algorithms, whose per-step cost already includes a binary search.
//!
//! The one exception is [`record_tuple_output`]: it sits on the innermost
//! emit path, which the flat-block pipeline drives at one answer per handful
//! of nanoseconds — even a thread-local increment is measurable there, and a
//! shared counter would be a contended atomic. It is therefore compiled out
//! entirely unless the `metrics` cargo feature is enabled; with the feature
//! on it is a single process-wide **relaxed** atomic (cheap, monotone, and
//! meaningful when summed across serving threads).

use std::cell::Cell;
#[cfg(feature = "metrics")]
use std::sync::atomic::{AtomicU64, Ordering};

thread_local! {
    static TRIE_SEEKS: Cell<u64> = const { Cell::new(0) };
    static COUNT_PROBES: Cell<u64> = const { Cell::new(0) };
    static DICT_LOOKUPS: Cell<u64> = const { Cell::new(0) };
    static BUILD_SORT_NS: Cell<u64> = const { Cell::new(0) };
    static BUILD_INDEX_NS: Cell<u64> = const { Cell::new(0) };
    static BUILD_DICT_NS: Cell<u64> = const { Cell::new(0) };
    static BUILD_LP_NS: Cell<u64> = const { Cell::new(0) };
}

/// Process-wide output-tuple counter (only with the `metrics` feature; the
/// hot loop carries no counter at all without it).
#[cfg(feature = "metrics")]
static TUPLES_OUTPUT: AtomicU64 = AtomicU64::new(0);

/// A snapshot of all counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Number of trie cursor seek/next operations performed by joins.
    pub trie_seeks: u64,
    /// Number of range-count probes against sorted indexes.
    pub count_probes: u64,
    /// Number of heavy-pair dictionary lookups.
    pub dict_lookups: u64,
    /// Number of output tuples produced by enumerators. Always 0 unless
    /// the `metrics` cargo feature is enabled (the emit path is otherwise
    /// counter-free); with the feature on this is a process-wide total,
    /// not a per-thread one.
    pub tuples_output: u64,
}

impl MetricsSnapshot {
    /// Componentwise difference `self - earlier`, saturating at zero.
    pub fn delta_since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            trie_seeks: self.trie_seeks.saturating_sub(earlier.trie_seeks),
            count_probes: self.count_probes.saturating_sub(earlier.count_probes),
            dict_lookups: self.dict_lookups.saturating_sub(earlier.dict_lookups),
            tuples_output: self.tuples_output.saturating_sub(earlier.tuples_output),
        }
    }

    /// Total work units (sum of all counters except output tuples).
    pub fn work(&self) -> u64 {
        self.trie_seeks + self.count_probes + self.dict_lookups
    }
}

/// Records `n` trie seek operations.
#[inline]
pub fn record_trie_seeks(n: u64) {
    TRIE_SEEKS.with(|c| c.set(c.get() + n));
}

/// Records a count-index probe.
#[inline]
pub fn record_count_probe() {
    COUNT_PROBES.with(|c| c.set(c.get() + 1));
}

/// Records a dictionary lookup.
#[inline]
pub fn record_dict_lookup() {
    DICT_LOOKUPS.with(|c| c.set(c.get() + 1));
}

/// Records an output tuple. A no-op (compiled out entirely) unless the
/// `metrics` cargo feature is enabled; with it, one relaxed atomic
/// increment on a process-wide counter.
#[inline]
pub fn record_tuple_output() {
    #[cfg(feature = "metrics")]
    TUPLES_OUTPUT.fetch_add(1, Ordering::Relaxed);
}

/// Reads the output-tuple counter (0 without the `metrics` feature).
fn tuples_output() -> u64 {
    #[cfg(feature = "metrics")]
    {
        TUPLES_OUTPUT.load(Ordering::Relaxed)
    }
    #[cfg(not(feature = "metrics"))]
    {
        0
    }
}

/// One phase of representation construction, for the build-time breakdown
/// reported by `cqe bench --profile build`. Phases are coarse on purpose:
/// they answer "where does a register go" (the preprocessing cost the
/// paper's §4.3 analysis budgets), not per-call microtimings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuildPhase {
    /// Row-permutation sorting inside index/relation construction.
    Sort,
    /// Gathering/emitting sorted index columns (everything in an index
    /// build that is not the sort itself).
    Index,
    /// Heavy-pair dictionary construction (Appendix A).
    Dictionary,
    /// LP and width-search solves (MinDelayCover/MinSpaceCover/ρ⁺ — the
    /// strategy-selection and cover-construction programs of §6).
    Lp,
}

/// Cumulative per-thread build-phase wall times, in nanoseconds.
///
/// Like the work counters these are thread-local: a build that runs on one
/// thread (the engine's register path) reads its own phases exactly; a
/// parallel sharded build accumulates each shard's phases on that shard's
/// thread.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BuildPhaseSnapshot {
    /// Permutation-sort time inside index and relation construction.
    pub sort_ns: u64,
    /// Column gather/emit time of index builds (excluding the sort).
    pub index_ns: u64,
    /// Heavy-pair dictionary construction time.
    pub dict_ns: u64,
    /// LP / width-search solve time.
    pub lp_ns: u64,
}

impl BuildPhaseSnapshot {
    /// Componentwise difference `self - earlier`, saturating at zero.
    pub fn delta_since(&self, earlier: &BuildPhaseSnapshot) -> BuildPhaseSnapshot {
        BuildPhaseSnapshot {
            sort_ns: self.sort_ns.saturating_sub(earlier.sort_ns),
            index_ns: self.index_ns.saturating_sub(earlier.index_ns),
            dict_ns: self.dict_ns.saturating_sub(earlier.dict_ns),
            lp_ns: self.lp_ns.saturating_sub(earlier.lp_ns),
        }
    }

    /// Total attributed build time.
    pub fn total_ns(&self) -> u64 {
        self.sort_ns + self.index_ns + self.dict_ns + self.lp_ns
    }
}

/// Adds `ns` to one build-phase timer. Called a handful of times per
/// representation build (never per answer), so the thread-local add is
/// free relative to the phases themselves.
#[inline]
pub fn record_build_phase(phase: BuildPhase, ns: u64) {
    let cell = match phase {
        BuildPhase::Sort => &BUILD_SORT_NS,
        BuildPhase::Index => &BUILD_INDEX_NS,
        BuildPhase::Dictionary => &BUILD_DICT_NS,
        BuildPhase::Lp => &BUILD_LP_NS,
    };
    cell.with(|c| c.set(c.get() + ns));
}

/// Reads the cumulative build-phase timers of this thread.
pub fn build_phases() -> BuildPhaseSnapshot {
    BuildPhaseSnapshot {
        sort_ns: BUILD_SORT_NS.with(Cell::get),
        index_ns: BUILD_INDEX_NS.with(Cell::get),
        dict_ns: BUILD_DICT_NS.with(Cell::get),
        lp_ns: BUILD_LP_NS.with(Cell::get),
    }
}

/// Reads the current counter values.
pub fn snapshot() -> MetricsSnapshot {
    MetricsSnapshot {
        trie_seeks: TRIE_SEEKS.with(Cell::get),
        count_probes: COUNT_PROBES.with(Cell::get),
        dict_lookups: DICT_LOOKUPS.with(Cell::get),
        tuples_output: tuples_output(),
    }
}

/// Resets all counters to zero (per thread; the output-tuple counter,
/// when the `metrics` feature is on, is process-wide and reset globally).
pub fn reset() {
    TRIE_SEEKS.with(|c| c.set(0));
    COUNT_PROBES.with(|c| c.set(0));
    DICT_LOOKUPS.with(|c| c.set(0));
    BUILD_SORT_NS.with(|c| c.set(0));
    BUILD_INDEX_NS.with(|c| c.set(0));
    BUILD_DICT_NS.with(|c| c.set(0));
    BUILD_LP_NS.with(|c| c.set(0));
    #[cfg(feature = "metrics")]
    TUPLES_OUTPUT.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        reset();
        record_trie_seeks(3);
        record_count_probe();
        record_dict_lookup();
        record_dict_lookup();
        record_tuple_output();
        let s = snapshot();
        assert_eq!(s.trie_seeks, 3);
        assert_eq!(s.count_probes, 1);
        assert_eq!(s.dict_lookups, 2);
        #[cfg(feature = "metrics")]
        assert_eq!(s.tuples_output, 1);
        #[cfg(not(feature = "metrics"))]
        assert_eq!(s.tuples_output, 0, "emit path is counter-free by default");
        assert_eq!(s.work(), 6);
        reset();
        assert_eq!(snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn build_phase_timers_accumulate_and_reset() {
        reset();
        record_build_phase(BuildPhase::Sort, 5);
        record_build_phase(BuildPhase::Sort, 7);
        record_build_phase(BuildPhase::Index, 3);
        record_build_phase(BuildPhase::Dictionary, 11);
        record_build_phase(BuildPhase::Lp, 2);
        let p = build_phases();
        assert_eq!(p.sort_ns, 12);
        assert_eq!(p.index_ns, 3);
        assert_eq!(p.dict_ns, 11);
        assert_eq!(p.lp_ns, 2);
        assert_eq!(p.total_ns(), 28);
        let later = {
            record_build_phase(BuildPhase::Sort, 8);
            build_phases()
        };
        assert_eq!(later.delta_since(&p).sort_ns, 8);
        assert_eq!(later.delta_since(&p).dict_ns, 0);
        reset();
        assert_eq!(build_phases(), BuildPhaseSnapshot::default());
    }

    #[test]
    fn delta_since_subtracts() {
        reset();
        record_trie_seeks(5);
        let a = snapshot();
        record_trie_seeks(7);
        let b = snapshot();
        assert_eq!(b.delta_since(&a).trie_seeks, 7);
    }
}
