//! Flat answer blocks and push-style enumeration sinks.
//!
//! The enumeration pipeline used to be pull-style: every structure exposed
//! an `Iterator<Item = Tuple>` and every `next()` allocated a fresh
//! `Vec<Value>` per answer. The paper's delay guarantees are about work per
//! answer, not allocations per answer — and in practice allocator traffic,
//! not the data structures, dominated the measured delay. This module is
//! the push-style replacement:
//!
//! * [`AnswerSink`] — the receiver side. Enumerators call
//!   [`AnswerSink::push`] with a **borrowed** value slice per answer; the
//!   sink decides whether to copy (into a flat block), count, or stop.
//! * [`AnswerBlock`] — the standard sink: one arity-strided `Vec<Value>`
//!   holding every answer of an enumeration back to back. Clearing a block
//!   keeps its capacity, so a block reused across requests reaches a
//!   steady state with **zero** heap allocations per answer.
//! * [`ExistsSink`] / [`CountingSink`] / [`FnSink`] — existence probes,
//!   cardinality counts, and ad-hoc closures over the same push interface.
//!
//! The pull-style iterators are retained as thin compatibility shims built
//! on the same cores; new code (and every hot serve path) goes through
//! sinks.

use crate::heap::HeapSize;
use crate::value::{lex_cmp, Tuple, Value};

/// The receiving end of a push-style enumeration.
///
/// Enumerators hand each answer to [`AnswerSink::push`] as a borrowed
/// slice valid only for the duration of the call; the sink copies what it
/// wants to keep. Returning `false` stops the enumeration early (the
/// device behind first-answer probes), and enumerators must not call
/// `push` again after a `false`.
pub trait AnswerSink {
    /// Receives one answer (the free-variable values, enumeration order).
    /// Returns `false` to stop the enumeration.
    fn push(&mut self, tuple: &[Value]) -> bool;
}

/// Mutable references forward, so `&mut dyn AnswerSink` (the
/// object-safe handle the network service layer passes around) satisfies
/// the generic `impl AnswerSink` bounds used throughout the enumerators.
impl<S: AnswerSink + ?Sized> AnswerSink for &mut S {
    #[inline]
    fn push(&mut self, tuple: &[Value]) -> bool {
        (**self).push(tuple)
    }
}

/// A flat, arity-strided block of answers: tuple `i` occupies
/// `values[i * arity .. (i + 1) * arity]`.
///
/// The arity is locked in by the first [`AnswerSink::push`] after
/// construction and re-checked (debug) on every later push;
/// [`AnswerBlock::clear`] keeps both the arity and the allocated capacity,
/// which is what makes reuse across requests allocation-free once the
/// high-water mark is reached. Zero-arity answers (all-bound views emit
/// the empty tuple) are supported: the block then counts answers without
/// storing values.
#[derive(Debug, Clone, Default)]
pub struct AnswerBlock {
    values: Vec<Value>,
    arity: usize,
    len: usize,
}

impl AnswerBlock {
    /// An empty block; the arity is adopted from the first push.
    pub fn new() -> AnswerBlock {
        AnswerBlock::default()
    }

    /// An empty block with pre-reserved capacity for `tuples` answers of
    /// the given arity.
    pub fn with_capacity(arity: usize, tuples: usize) -> AnswerBlock {
        AnswerBlock {
            values: Vec::with_capacity(arity * tuples),
            arity,
            len: 0,
        }
    }

    /// Number of answers held.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no answers are held.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The tuple arity (0 until the first push on a fresh block).
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Answer `i` as a value slice.
    ///
    /// # Panics
    ///
    /// Panics when `i >= len()`.
    pub fn get(&self, i: usize) -> &[Value] {
        assert!(
            i < self.len,
            "answer index {i} out of bounds ({})",
            self.len
        );
        &self.values[i * self.arity..(i + 1) * self.arity]
    }

    /// The raw flat value storage (length `len() * arity()`).
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Iterates over the answers as value slices.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = &[Value]> + '_ {
        (0..self.len).map(move |i| {
            // Not `chunks_exact`: arity 0 blocks hold answers without values.
            &self.values[i * self.arity..(i + 1) * self.arity]
        })
    }

    /// Copies the block out into the legacy owned-tuple representation
    /// (compatibility; one allocation per tuple by construction).
    pub fn to_tuples(&self) -> Vec<Tuple> {
        self.iter().map(<[Value]>::to_vec).collect()
    }

    /// Forgets the answers but keeps the arity and the allocated capacity
    /// — the reuse point of the steady-state serve loop.
    pub fn clear(&mut self) {
        self.values.clear();
        self.len = 0;
    }

    /// Resets the block completely (arity unlocked, capacity kept) so it
    /// can be reused for a view of a different arity.
    pub fn reset(&mut self) {
        self.clear();
        self.arity = 0;
    }

    /// Drops every answer past the first `keep` (no-op when `keep >=
    /// len()`). Arity and capacity are kept — this is the failover
    /// rollback point: a resumed stream that turns out to be at the wrong
    /// epoch is cut back to the verified prefix.
    pub fn truncate(&mut self, keep: usize) {
        if keep >= self.len {
            return;
        }
        self.values.truncate(keep * self.arity);
        self.len = keep;
    }

    /// Appends `count` answers of the given `arity` from an already-flat
    /// value stream — the decode path for wire chunks, which arrive exactly
    /// in this layout. A fresh (or `reset`) block adopts `arity`; `count`
    /// is explicit so zero-arity chunks (answer counts without values) land
    /// correctly.
    ///
    /// # Panics
    ///
    /// Panics when `flat.len() != count * arity`, or when the block already
    /// holds answers of a different arity.
    pub fn extend_flat(&mut self, arity: usize, count: usize, flat: &[Value]) {
        assert_eq!(
            flat.len(),
            count * arity,
            "flat chunk length {} does not match {count} answers of arity {arity}",
            flat.len()
        );
        if self.len == 0 && self.arity == 0 {
            self.arity = arity;
        }
        assert_eq!(arity, self.arity, "chunk arity changed mid-block");
        self.values.extend_from_slice(flat);
        self.len += count;
    }
}

impl AnswerSink for AnswerBlock {
    #[inline]
    fn push(&mut self, tuple: &[Value]) -> bool {
        if self.len == 0 && self.arity == 0 {
            self.arity = tuple.len();
        }
        debug_assert_eq!(tuple.len(), self.arity, "answer arity changed mid-block");
        self.values.extend_from_slice(tuple);
        self.len += 1;
        true
    }
}

impl HeapSize for AnswerBlock {
    fn heap_bytes(&self) -> usize {
        self.values.heap_bytes()
    }
}

impl<'b> IntoIterator for &'b AnswerBlock {
    type Item = &'b [Value];
    type IntoIter = BlockIter<'b>;

    fn into_iter(self) -> BlockIter<'b> {
        BlockIter { block: self, i: 0 }
    }
}

/// Iterator over the answers of an [`AnswerBlock`] (borrowed slices).
#[derive(Debug)]
pub struct BlockIter<'b> {
    block: &'b AnswerBlock,
    i: usize,
}

impl<'b> Iterator for BlockIter<'b> {
    type Item = &'b [Value];

    fn next(&mut self) -> Option<&'b [Value]> {
        if self.i >= self.block.len() {
            return None;
        }
        let t = self.block.get(self.i);
        self.i += 1;
        Some(t)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.block.len() - self.i;
        (n, Some(n))
    }
}

/// A sink that only records whether any answer arrived, stopping the
/// enumeration at the first one — the first-answer probe of §3.3.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExistsSink {
    /// `true` once an answer has been pushed.
    pub found: bool,
}

impl AnswerSink for ExistsSink {
    #[inline]
    fn push(&mut self, _tuple: &[Value]) -> bool {
        self.found = true;
        false
    }
}

/// A sink that counts answers without retaining them (the measurement
/// path: no copy, no allocation, no early stop).
#[derive(Debug, Clone, Copy, Default)]
pub struct CountingSink {
    /// Number of answers pushed.
    pub count: usize,
}

impl AnswerSink for CountingSink {
    #[inline]
    fn push(&mut self, _tuple: &[Value]) -> bool {
        self.count += 1;
        true
    }
}

/// Adapts a closure `FnMut(&[Value]) -> bool` into a sink.
#[derive(Debug)]
pub struct FnSink<F>(pub F);

impl<F: FnMut(&[Value]) -> bool> AnswerSink for FnSink<F> {
    #[inline]
    fn push(&mut self, tuple: &[Value]) -> bool {
        (self.0)(tuple)
    }
}

/// A reusable `k`-way merge over lexicographically sorted [`AnswerBlock`]s.
///
/// Sharded serving enumerates one block per shard, each in the paper's
/// lexicographic free-variable order; merging them restores the *global*
/// lexicographic enumeration order, so a sharded engine gives the same
/// ordered answer stream a single structure would. `k` (the shard count) is
/// small, so each step is a linear scan over the block cursors rather than
/// a heap — cheaper in practice and allocation-free after the first use.
///
/// The merger is stable across equal tuples (ties go to the lower block
/// index), which makes concatenation semantics deterministic even when the
/// inputs are not disjoint.
#[derive(Debug, Default)]
pub struct BlockMerger {
    cursors: Vec<usize>,
}

impl BlockMerger {
    /// An empty merger (cursor scratch grows to the largest `k` seen).
    pub fn new() -> BlockMerger {
        BlockMerger::default()
    }

    /// Merges `blocks` — each individually sorted in lexicographic order —
    /// into `sink`, preserving global lexicographic order. Returns the
    /// number of tuples pushed; stops early when the sink refuses one.
    pub fn merge_into(&mut self, blocks: &[&AnswerBlock], sink: &mut impl AnswerSink) -> usize {
        // Degenerate shapes the router hits constantly: all inputs empty
        // (a selective request), or exactly one non-empty input (a
        // single-shard view, or a fan-out where only one shard matched).
        // Both skip the per-tuple k-way scan entirely.
        let mut non_empty = blocks.iter().filter(|b| !b.is_empty());
        let Some(first) = non_empty.next() else {
            return 0;
        };
        if non_empty.next().is_none() {
            let mut pushed = 0usize;
            for t in first.iter() {
                pushed += 1;
                if !sink.push(t) {
                    break;
                }
            }
            return pushed;
        }
        self.cursors.clear();
        self.cursors.resize(blocks.len(), 0);
        let mut pushed = 0usize;
        loop {
            let mut best: Option<(usize, &[Value])> = None;
            for (i, block) in blocks.iter().enumerate() {
                if self.cursors[i] >= block.len() {
                    continue;
                }
                let t = block.get(self.cursors[i]);
                match best {
                    Some((_, bt)) if lex_cmp(t, bt) != std::cmp::Ordering::Less => {}
                    _ => best = Some((i, t)),
                }
            }
            let Some((i, t)) = best else { break };
            self.cursors[i] += 1;
            pushed += 1;
            if !sink.push(t) {
                break;
            }
        }
        pushed
    }

    /// Concatenates `blocks` into `sink` in block order, without reordering
    /// — the cheap path when the caller does not need the merged
    /// lexicographic order. Returns the number of tuples pushed.
    pub fn concat_into(blocks: &[&AnswerBlock], sink: &mut impl AnswerSink) -> usize {
        let mut pushed = 0usize;
        for block in blocks {
            for t in block.iter() {
                pushed += 1;
                if !sink.push(t) {
                    return pushed;
                }
            }
        }
        pushed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_strides_by_arity() {
        let mut b = AnswerBlock::new();
        assert!(b.push(&[1, 2]));
        assert!(b.push(&[3, 4]));
        assert_eq!(b.len(), 2);
        assert_eq!(b.arity(), 2);
        assert_eq!(b.get(0), &[1, 2]);
        assert_eq!(b.get(1), &[3, 4]);
        assert_eq!(b.values(), &[1, 2, 3, 4]);
        assert_eq!(b.to_tuples(), vec![vec![1, 2], vec![3, 4]]);
        let collected: Vec<&[Value]> = b.iter().collect();
        assert_eq!(collected, vec![&[1, 2][..], &[3, 4]]);
    }

    #[test]
    fn clear_keeps_capacity_and_arity() {
        let mut b = AnswerBlock::new();
        for i in 0..100u64 {
            b.push(&[i, i + 1, i + 2]);
        }
        let cap = b.values.capacity();
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.arity(), 3);
        assert_eq!(b.values.capacity(), cap);
        b.push(&[7, 8, 9]);
        assert_eq!(b.get(0), &[7, 8, 9]);
    }

    #[test]
    fn zero_arity_answers_are_counted() {
        let mut b = AnswerBlock::new();
        assert!(b.push(&[]));
        assert!(b.push(&[]));
        assert_eq!(b.len(), 2);
        assert_eq!(b.arity(), 0);
        assert_eq!(b.to_tuples(), vec![Vec::<Value>::new(), Vec::new()]);
        assert_eq!(b.iter().count(), 2);
    }

    #[test]
    fn reset_unlocks_arity() {
        let mut b = AnswerBlock::new();
        b.push(&[1, 2]);
        b.reset();
        b.push(&[9]);
        assert_eq!(b.arity(), 1);
        assert_eq!(b.get(0), &[9]);
    }

    #[test]
    fn exists_sink_stops_immediately() {
        let mut s = ExistsSink::default();
        assert!(!s.found);
        assert!(!s.push(&[1]));
        assert!(s.found);
    }

    #[test]
    fn counting_and_fn_sinks() {
        let mut c = CountingSink::default();
        assert!(c.push(&[1]));
        assert!(c.push(&[2]));
        assert_eq!(c.count, 2);
        let mut seen = Vec::new();
        let mut f = FnSink(|t: &[Value]| {
            seen.push(t.to_vec());
            seen.len() < 2
        });
        assert!(f.push(&[1]));
        assert!(!f.push(&[2]));
        assert_eq!(seen, vec![vec![1], vec![2]]);
    }

    #[test]
    fn block_into_iter() {
        let mut b = AnswerBlock::new();
        b.push(&[5, 6]);
        let tuples: Vec<&[Value]> = (&b).into_iter().collect();
        assert_eq!(tuples, vec![&[5, 6][..]]);
    }

    fn block_of(tuples: &[&[Value]]) -> AnswerBlock {
        let mut b = AnswerBlock::new();
        for t in tuples {
            b.push(t);
        }
        b
    }

    #[test]
    fn merge_restores_lexicographic_order() {
        let a = block_of(&[&[1, 9], &[3, 0], &[5, 5]]);
        let b = block_of(&[&[0, 2], &[3, 1]]);
        let c = block_of(&[&[2, 2]]);
        let mut out = AnswerBlock::new();
        let mut merger = BlockMerger::new();
        let n = merger.merge_into(&[&a, &b, &c], &mut out);
        assert_eq!(n, 6);
        let got: Vec<&[Value]> = out.iter().collect();
        assert_eq!(
            got,
            vec![&[0, 2][..], &[1, 9], &[2, 2], &[3, 0], &[3, 1], &[5, 5]]
        );
        // The merger is reusable across calls (and across different k).
        let mut out2 = AnswerBlock::new();
        assert_eq!(merger.merge_into(&[&c, &b], &mut out2), 3);
        assert_eq!(out2.get(0), &[0, 2]);
    }

    #[test]
    fn merge_handles_empty_and_ties() {
        let empty = AnswerBlock::new();
        let a = block_of(&[&[1], &[2]]);
        let b = block_of(&[&[1], &[3]]);
        let mut out = AnswerBlock::new();
        let mut merger = BlockMerger::new();
        assert_eq!(merger.merge_into(&[&empty, &a, &b], &mut out), 4);
        let got: Vec<&[Value]> = out.iter().collect();
        // Ties are stable: block index order (a before b).
        assert_eq!(got, vec![&[1][..], &[1], &[2], &[3]]);
        assert_eq!(merger.merge_into(&[&empty], &mut AnswerBlock::new()), 0);
    }

    #[test]
    fn merge_respects_early_stop() {
        let a = block_of(&[&[1], &[4]]);
        let b = block_of(&[&[2], &[3]]);
        let mut probe = ExistsSink::default();
        let mut merger = BlockMerger::new();
        assert_eq!(merger.merge_into(&[&a, &b], &mut probe), 1);
        assert!(probe.found);
    }

    #[test]
    fn merge_of_all_empty_blocks_is_empty() {
        let e1 = AnswerBlock::new();
        let e2 = AnswerBlock::new();
        let mut out = AnswerBlock::new();
        let mut merger = BlockMerger::new();
        assert_eq!(merger.merge_into(&[], &mut out), 0);
        assert_eq!(merger.merge_into(&[&e1, &e2], &mut out), 0);
        assert!(out.is_empty());
        // The fast path must not poison later real merges.
        let a = block_of(&[&[2], &[5]]);
        let b = block_of(&[&[1]]);
        assert_eq!(merger.merge_into(&[&a, &b], &mut out), 3);
        assert_eq!(out.get(0), &[1]);
    }

    #[test]
    fn merge_single_nonempty_block_passes_through() {
        let a = block_of(&[&[3, 1], &[4, 1], &[5, 9]]);
        let empty = AnswerBlock::new();
        let mut out = AnswerBlock::new();
        let mut merger = BlockMerger::new();
        let n = merger.merge_into(&[&empty, &a, &empty], &mut out);
        assert_eq!(n, 3);
        let got: Vec<&[Value]> = out.iter().collect();
        assert_eq!(got, vec![&[3, 1][..], &[4, 1], &[5, 9]]);
        // Early stop still honoured on the passthrough path.
        let mut probe = ExistsSink::default();
        assert_eq!(merger.merge_into(&[&a, &empty], &mut probe), 1);
        assert!(probe.found);
    }

    #[test]
    fn extend_flat_decodes_wire_chunks() {
        let mut b = AnswerBlock::new();
        b.extend_flat(2, 2, &[1, 2, 3, 4]);
        b.extend_flat(2, 1, &[5, 6]);
        assert_eq!(b.len(), 3);
        assert_eq!(b.get(2), &[5, 6]);
        // Zero-arity chunks carry counts without values.
        let mut z = AnswerBlock::new();
        z.extend_flat(0, 4, &[]);
        assert_eq!(z.len(), 4);
        assert_eq!(z.arity(), 0);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn extend_flat_rejects_ragged_chunks() {
        AnswerBlock::new().extend_flat(2, 2, &[1, 2, 3]);
    }

    #[test]
    fn mut_ref_sink_forwards() {
        fn fill(sink: &mut dyn AnswerSink) {
            sink.push(&[1]);
            sink.push(&[2]);
        }
        let mut b = AnswerBlock::new();
        fill(&mut b);
        assert_eq!(b.len(), 2);
        // And a `&mut dyn` handle satisfies `impl AnswerSink` bounds.
        let a = block_of(&[&[7]]);
        let mut out = AnswerBlock::new();
        let mut sink: &mut dyn AnswerSink = &mut out;
        assert_eq!(BlockMerger::new().merge_into(&[&a], &mut sink), 1);
        assert_eq!(out.get(0), &[7]);
    }

    #[test]
    fn concat_preserves_block_order() {
        let a = block_of(&[&[9]]);
        let b = block_of(&[&[1]]);
        let mut out = AnswerBlock::new();
        assert_eq!(BlockMerger::concat_into(&[&a, &b], &mut out), 2);
        let got: Vec<&[Value]> = out.iter().collect();
        assert_eq!(got, vec![&[9][..], &[1]]);
    }
}
