//! A vendored counting allocator for allocation-discipline tests.
//!
//! The flat-block enumeration pipeline claims *zero* heap allocations per
//! answer in steady state. Wall-clock speedups are machine-dependent, so
//! the claim is enforced directly: a binary (the `cqe` CLI, the regression
//! tests) installs [`CountingAlloc`] as its `#[global_allocator]`, warms
//! the scratch buffers with one pass, snapshots [`allocations`], runs the
//! measured pass, and asserts the delta is zero.
//!
//! The counter is a single process-wide relaxed atomic: increments cost a
//! few nanoseconds, allocation behaviour is otherwise exactly
//! [`std::alloc::System`], and the count is monotone (deallocations are
//! tracked separately and never decrement it). `realloc` counts as one
//! allocation event — growing a `Vec` past its capacity is precisely the
//! traffic the discipline is meant to catch.
//!
//! This module is the only place in the workspace that uses `unsafe`
//! (implementing [`GlobalAlloc`] requires it); the crate-level lint is
//! `deny(unsafe_code)` with a scoped allow here.

#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static DEALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static BYTES_ALLOCATED: AtomicU64 = AtomicU64::new(0);

/// A [`System`]-backed allocator that counts every allocation event.
///
/// Install it in a binary or test crate with:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: cqc_common::alloc::CountingAlloc = cqc_common::alloc::CountingAlloc;
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct CountingAlloc;

// SAFETY: every method delegates directly to `System`, which upholds the
// `GlobalAlloc` contract; the counter updates have no effect on allocation
// behaviour.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        BYTES_ALLOCATED.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        BYTES_ALLOCATED.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        DEALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        BYTES_ALLOCATED.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

/// Total allocation events (`alloc` + `alloc_zeroed` + `realloc`) since
/// process start. Monotone; 0 forever unless [`CountingAlloc`] is the
/// global allocator.
pub fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Total deallocation events since process start.
pub fn deallocations() -> u64 {
    DEALLOCATIONS.load(Ordering::Relaxed)
}

/// Total bytes requested across all allocation events (not live bytes).
pub fn bytes_allocated() -> u64 {
    BYTES_ALLOCATED.load(Ordering::Relaxed)
}

/// A snapshot of the allocation counters, for delta measurements around a
/// region of interest.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocSnapshot {
    /// Allocation events at snapshot time.
    pub allocations: u64,
    /// Deallocation events at snapshot time.
    pub deallocations: u64,
    /// Cumulative requested bytes at snapshot time.
    pub bytes: u64,
}

/// Reads the current counters.
pub fn snapshot() -> AllocSnapshot {
    AllocSnapshot {
        allocations: allocations(),
        deallocations: deallocations(),
        bytes: bytes_allocated(),
    }
}

impl AllocSnapshot {
    /// Allocation events since `earlier`.
    pub fn allocations_since(&self, earlier: &AllocSnapshot) -> u64 {
        self.allocations.saturating_sub(earlier.allocations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The test binary does not install the allocator, so the counters are
    // flat — only the arithmetic is testable here. The end-to-end behaviour
    // is exercised by the `cqe` binary and the engine's allocation
    // regression tests, which do install it.
    #[test]
    fn snapshot_delta_arithmetic() {
        let a = AllocSnapshot {
            allocations: 10,
            deallocations: 4,
            bytes: 100,
        };
        let b = AllocSnapshot {
            allocations: 17,
            deallocations: 9,
            bytes: 240,
        };
        assert_eq!(b.allocations_since(&a), 7);
        assert_eq!(a.allocations_since(&b), 0, "saturating");
    }

    #[test]
    fn counters_are_monotone_reads() {
        let s1 = snapshot();
        let s2 = snapshot();
        assert!(s2.allocations >= s1.allocations);
        assert!(s2.deallocations >= s1.deallocations);
    }
}
