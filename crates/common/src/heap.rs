//! Deterministic heap-space accounting.
//!
//! The paper's central tradeoff is *space* versus delay, so the benchmark
//! harness must measure the size `S` of each compressed representation. We
//! account space deterministically (summing the capacities of owned buffers)
//! rather than asking the allocator, so that measurements are reproducible
//! across hosts and allocators.

/// Types that can report the heap bytes they own.
///
/// Implementations report *owned heap allocations only* — the inline size of
/// the value itself is excluded (callers add `size_of::<T>()` if they own the
/// value inline). Capacities, not lengths, are counted: over-allocation is
/// real memory.
pub trait HeapSize {
    /// Number of heap bytes owned by `self`.
    fn heap_bytes(&self) -> usize;
}

impl<T: Copy> HeapSize for Vec<T> {
    fn heap_bytes(&self) -> usize {
        self.capacity() * std::mem::size_of::<T>()
    }
}

impl HeapSize for String {
    fn heap_bytes(&self) -> usize {
        self.capacity()
    }
}

impl<T: HeapSize> HeapSize for Option<T> {
    fn heap_bytes(&self) -> usize {
        self.as_ref().map_or(0, HeapSize::heap_bytes)
    }
}

/// Heap bytes of a `Vec` of heap-owning values: buffer plus the transitive
/// allocations of each element.
pub fn vec_deep_bytes<T: HeapSize>(v: &[T]) -> usize {
    std::mem::size_of_val(v) + v.iter().map(HeapSize::heap_bytes).sum::<usize>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_counts_capacity() {
        let mut v: Vec<u64> = Vec::with_capacity(16);
        v.push(1);
        assert_eq!(v.heap_bytes(), 16 * 8);
    }

    #[test]
    fn nested_vectors_count_transitively() {
        let v: Vec<Vec<u64>> = vec![vec![1, 2, 3], vec![4]];
        let inner: usize = v.iter().map(|x| x.heap_bytes()).sum();
        assert_eq!(
            vec_deep_bytes(&v),
            2 * std::mem::size_of::<Vec<u64>>() + inner
        );
    }

    #[test]
    fn option_and_string() {
        let s = String::from("hello");
        assert!(s.heap_bytes() >= 5);
        let o: Option<String> = None;
        assert_eq!(o.heap_bytes(), 0);
    }
}
