//! Domain values and tuples.
//!
//! The paper works over an abstract ordered domain **dom**. We represent
//! values as `u64`: real datasets are interned through
//! `cqc_storage::interner::Interner`, and the total order on `u64` plays the
//! role of the order `≤` on **dom** that the lexicographic enumeration order
//! of Section 3.1 is derived from.

use std::cmp::Ordering;

/// A single domain value.
pub type Value = u64;

/// An owned tuple of domain values.
///
/// Tuples are kept as plain `Vec<Value>`; arities in conjunctive queries are
/// tiny (≤ 8 in every workload in this repository) and the flat storage used
/// by `cqc-storage` avoids per-row allocations on the hot paths, so a simple
/// representation suffices here.
pub type Tuple = Vec<Value>;

/// Lexicographic comparison of two equal-length value slices.
///
/// This is the order `≤` lifted from **dom** to tuples in Section 4.1 of the
/// paper; all output enumeration guarantees are stated with respect to it.
///
/// Arities 1 and 2 — the binary relations of every graph workload and the
/// unary projections — take branch-free unrolled paths: this comparator is
/// the inner loop of every remaining comparison sort and sorted merge on
/// the build path, where the generic loop's per-element bounds checks and
/// loop control are measurable.
///
/// # Panics
///
/// Debug-asserts that both slices have the same length.
#[inline]
pub fn lex_cmp(a: &[Value], b: &[Value]) -> Ordering {
    debug_assert_eq!(a.len(), b.len(), "lex_cmp requires equal arity");
    match (a, b) {
        ([x], [y]) => x.cmp(y),
        ([x0, x1], [y0, y1]) => x0.cmp(y0).then_with(|| x1.cmp(y1)),
        _ => {
            for (x, y) in a.iter().zip(b.iter()) {
                match x.cmp(y) {
                    Ordering::Equal => continue,
                    other => return other,
                }
            }
            Ordering::Equal
        }
    }
}

/// Returns `true` if `a` is lexicographically strictly smaller than `b`.
#[inline]
pub fn lex_lt(a: &[Value], b: &[Value]) -> bool {
    lex_cmp(a, b) == Ordering::Less
}

/// Returns `true` if `a ≤ b` lexicographically.
#[inline]
pub fn lex_le(a: &[Value], b: &[Value]) -> bool {
    lex_cmp(a, b) != Ordering::Greater
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lex_cmp_orders_prefix_first() {
        assert_eq!(lex_cmp(&[1, 2, 3], &[1, 2, 3]), Ordering::Equal);
        assert_eq!(lex_cmp(&[1, 2, 3], &[1, 3, 0]), Ordering::Less);
        assert_eq!(lex_cmp(&[2, 0, 0], &[1, 9, 9]), Ordering::Greater);
    }

    #[test]
    fn lex_helpers_agree_with_cmp() {
        assert!(lex_lt(&[0, 1], &[0, 2]));
        assert!(!lex_lt(&[0, 2], &[0, 2]));
        assert!(lex_le(&[0, 2], &[0, 2]));
        assert!(!lex_le(&[1, 0], &[0, 9]));
    }

    #[test]
    fn unrolled_arity_1_and_2_match_generic() {
        // The fast paths must agree with the generic loop on every
        // ordering outcome, including the equal-prefix cases.
        for (a, b) in [(0u64, 0u64), (0, 1), (1, 0), (7, 7)] {
            assert_eq!(lex_cmp(&[a], &[b]), a.cmp(&b));
        }
        for a0 in 0u64..3 {
            for a1 in 0u64..3 {
                for b0 in 0u64..3 {
                    for b1 in 0u64..3 {
                        let expect = (a0, a1).cmp(&(b0, b1));
                        assert_eq!(lex_cmp(&[a0, a1], &[b0, b1]), expect);
                    }
                }
            }
        }
    }

    #[test]
    fn empty_tuples_are_equal() {
        assert_eq!(lex_cmp(&[], &[]), Ordering::Equal);
        assert!(lex_le(&[], &[]));
    }
}
