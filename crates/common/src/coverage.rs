//! Per-shard coverage bitmaps for degraded responses.
//!
//! A fan-out serve that loses an entire replica group can still answer
//! from the shards that remain — but only if the response says *exactly*
//! which shards contributed. [`Coverage`] is that record: one bit per
//! shard, set iff the shard's stream made it into the merged result. A
//! full bitmap means the answer is exact; anything less is a degraded
//! (partial) answer and must travel with a typed `DEGRADED` indication
//! (`frame::code::DEGRADED`) so no caller can mistake a partial result
//! for a complete one.
//!
//! The wire layout is `u16 n_shards | ceil(n/8) bytes` (bit `i` of byte
//! `i / 8` is shard `i`, LSB first) — compact enough to ride inside an
//! error detail or a future response tail without a layout change.

use crate::error::Result;
use crate::frame::{code, PayloadReader, PayloadWriter};
use crate::CqcError;
use std::fmt;

/// A per-shard served/missing bitmap (see the module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Coverage {
    bits: Vec<u8>,
    shards: usize,
}

impl Coverage {
    /// An all-missing bitmap over `shards` shards.
    pub fn empty(shards: usize) -> Coverage {
        Coverage {
            bits: vec![0u8; shards.div_ceil(8)],
            shards,
        }
    }

    /// An all-served bitmap over `shards` shards.
    pub fn full(shards: usize) -> Coverage {
        let mut c = Coverage::empty(shards);
        for i in 0..shards {
            c.mark(i);
        }
        c
    }

    /// Number of shards the bitmap spans.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Marks shard `i` as served.
    ///
    /// # Panics
    ///
    /// Panics when `i >= shards()`.
    pub fn mark(&mut self, i: usize) {
        assert!(i < self.shards, "shard {i} out of range ({})", self.shards);
        self.bits[i / 8] |= 1 << (i % 8);
    }

    /// `true` iff shard `i` was served.
    pub fn served(&self, i: usize) -> bool {
        assert!(i < self.shards, "shard {i} out of range ({})", self.shards);
        self.bits[i / 8] & (1 << (i % 8)) != 0
    }

    /// Number of shards served.
    pub fn served_count(&self) -> usize {
        (0..self.shards).filter(|&i| self.served(i)).count()
    }

    /// `true` iff every shard was served — the answer is exact.
    pub fn is_full(&self) -> bool {
        self.served_count() == self.shards
    }

    /// The shard indexes that are missing, ascending.
    pub fn missing(&self) -> Vec<usize> {
        (0..self.shards).filter(|&i| !self.served(i)).collect()
    }

    /// Encodes the bitmap (`u16 n_shards | ceil(n/8) bytes`) — appended,
    /// so it composes as a payload tail.
    pub fn encode(&self, w: &mut PayloadWriter) {
        w.put_u16(self.shards as u16);
        for &b in &self.bits {
            w.put_u8(b);
        }
    }

    /// Decodes a bitmap written by [`Coverage::encode`].
    ///
    /// # Errors
    ///
    /// [`code::BAD_FRAME`] on truncation or a padding bit set past the
    /// shard count (a forged "extra shard" cannot slip through).
    pub fn decode(r: &mut PayloadReader<'_>) -> Result<Coverage> {
        let shards = r.get_u16()? as usize;
        let mut bits = vec![0u8; shards.div_ceil(8)];
        for b in &mut bits {
            *b = r.get_u8()?;
        }
        let c = Coverage { bits, shards };
        for i in shards..c.bits.len() * 8 {
            if c.bits[i / 8] & (1 << (i % 8)) != 0 {
                return Err(CqcError::Protocol {
                    code: code::BAD_FRAME,
                    detail: format!("coverage bitmap sets padding bit {i} past {shards} shards"),
                });
            }
        }
        Ok(c)
    }
}

impl fmt::Display for Coverage {
    /// `3/4 shards [1101]` — served count, then one digit per shard.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{} shards [", self.served_count(), self.shards)?;
        for i in 0..self.shards {
            write!(f, "{}", u8::from(self.served(i)))?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marks_and_queries() {
        let mut c = Coverage::empty(10);
        assert_eq!(c.served_count(), 0);
        assert!(!c.is_full());
        c.mark(0);
        c.mark(9);
        assert!(c.served(0) && c.served(9) && !c.served(5));
        assert_eq!(c.missing(), vec![1, 2, 3, 4, 5, 6, 7, 8]);
        assert!(Coverage::full(10).is_full());
        assert!(Coverage::full(0).is_full(), "zero shards is vacuously full");
    }

    #[test]
    fn round_trips_on_the_wire() {
        let mut c = Coverage::empty(11);
        for i in [0, 3, 10] {
            c.mark(i);
        }
        let mut w = PayloadWriter::new();
        c.encode(w.start());
        let mut r = PayloadReader::new(w.bytes());
        let back = Coverage::decode(&mut r).unwrap();
        assert_eq!(back, c);
        assert_eq!(r.remaining(), 0);
        assert_eq!(back.to_string(), "3/11 shards [10010000001]");
    }

    #[test]
    fn forged_padding_bits_are_rejected() {
        let mut w = PayloadWriter::new();
        w.start().put_u16(3).put_u8(0b1111_1000); // bits 3..7 are padding
        let err = Coverage::decode(&mut PayloadReader::new(w.bytes())).unwrap_err();
        assert!(
            matches!(
                err,
                CqcError::Protocol {
                    code: code::BAD_FRAME,
                    ..
                }
            ),
            "{err}"
        );
        // Truncated bitmaps are typed too.
        w.start().put_u16(9).put_u8(0);
        assert!(Coverage::decode(&mut PayloadReader::new(w.bytes())).is_err());
    }
}
