//! A fast, non-cryptographic hasher and hash-table aliases.
//!
//! The join and dictionary machinery keys hash tables by small integers and
//! short integer tuples. The standard library's SipHash is designed to resist
//! HashDoS attacks, which is irrelevant for an in-process data structure and
//! measurably slow for these keys. This module implements the well-known
//! FxHash mixing function (multiply by a large odd constant, rotate, xor) —
//! the same scheme used by the Rust compiler — so the workspace does not need
//! an external hashing dependency.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative mixing constant; the 64-bit golden-ratio constant used by
/// FxHash.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// An FxHash-style streaming hasher.
///
/// Not cryptographically secure and not HashDoS resistant — by design. Use
/// only for in-memory tables whose keys are not attacker controlled.
#[derive(Default, Clone, Copy)]
pub struct FastHasher {
    state: u64,
}

impl FastHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(buf));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.mix(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.mix(u64::from(v));
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }
}

/// `HashMap` using [`FastHasher`].
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FastHasher>>;

/// `HashSet` using [`FastHasher`].
pub type FastSet<T> = HashSet<T, BuildHasherDefault<FastHasher>>;

/// Creates an empty [`FastMap`].
#[inline]
pub fn fast_map<K, V>() -> FastMap<K, V> {
    FastMap::default()
}

/// Creates an empty [`FastSet`].
#[inline]
pub fn fast_set<T>() -> FastSet<T> {
    FastSet::default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut m: FastMap<u64, u64> = fast_map();
        for i in 0..1000u64 {
            m.insert(i, i * 2);
        }
        for i in 0..1000u64 {
            assert_eq!(m.get(&i), Some(&(i * 2)));
        }
        assert_eq!(m.len(), 1000);
    }

    #[test]
    fn tuple_keys_distinguish_order() {
        let mut s: FastSet<Vec<u64>> = fast_set();
        s.insert(vec![1, 2]);
        s.insert(vec![2, 1]);
        assert_eq!(s.len(), 2);
        assert!(s.contains(&vec![1, 2]));
        assert!(!s.contains(&vec![1, 3]));
    }

    #[test]
    fn hasher_is_deterministic() {
        let mut a = FastHasher::default();
        let mut b = FastHasher::default();
        a.write(b"conjunctive query");
        b.write(b"conjunctive query");
        assert_eq!(a.finish(), b.finish());
        let mut c = FastHasher::default();
        c.write(b"conjunctive querz");
        assert_ne!(a.finish(), c.finish());
    }

    #[test]
    fn partial_chunks_hash_differently() {
        let mut a = FastHasher::default();
        a.write(b"abc");
        let mut b = FastHasher::default();
        b.write(b"abd");
        assert_ne!(a.finish(), b.finish());
    }
}
