//! §1 statistical inference: the Felix scenario. An inference engine
//! repeatedly evaluates adorned rule views; Felix chooses between eager
//! materialization and lazy evaluation per subquery. The paper's structure
//! explores the whole continuum — this example walks it and also shows
//! Theorem 2 splitting the rule across a decomposition.
//!
//! ```bash
//! cargo run --release --example inference_views
//! ```

use cqc_common::heap::HeapSize;
use cqc_core::compressed::{CompressedView, Strategy};
use cqc_query::parser::parse_adorned;
use cqc_storage::Database;
use std::time::Instant;

fn main() {
    // Rule body: Mention(doc, person), Friend(person, other),
    // Works(other, org). Access pattern: given (doc, org), enumerate the
    // witnessing (person, other) chains.
    let mut rng = cqc_workload::rng(123);
    let mut db = Database::new();
    for (name, rows) in [("Mention", 4000), ("Friend", 4000), ("Works", 4000)] {
        db.add(cqc_workload::uniform_relation(&mut rng, name, 2, rows, 220))
            .unwrap();
    }
    let view = parse_adorned(
        "Rule(doc, org, person, other) :- Mention(doc, person), Friend(person, other), Works(other, org)",
        "bbff",
    )
    .unwrap();
    println!("rule view: {view}");
    println!("input size |D| = {}\n", db.size());

    let requests = cqc_workload::witness_requests(&mut rng, &view, &db, 400);

    let strategies: Vec<(String, Strategy)> = vec![
        ("lazy (direct)".into(), Strategy::Direct),
        ("eager (materialize)".into(), Strategy::Materialize),
        (
            "partial: budget |D|^1.0".into(),
            Strategy::Auto {
                space_budget_exp: Some(1.0),
            },
        ),
        (
            "partial: budget |D|^1.3".into(),
            Strategy::Auto {
                space_budget_exp: Some(1.3),
            },
        ),
        (
            "partial: budget |D|^2.0".into(),
            Strategy::Auto {
                space_budget_exp: Some(2.0),
            },
        ),
    ];

    println!(
        "{:<26} {:>12} {:>12} {:>14} {:>10}",
        "strategy", "space (B)", "build", "batch answer", "results"
    );
    for (name, strat) in strategies {
        let t0 = Instant::now();
        let cv = CompressedView::build(&view, &db, strat).unwrap();
        let build = t0.elapsed();
        let t0 = Instant::now();
        let mut results = 0usize;
        for r in &requests {
            results += cv.answer(r).unwrap().count();
        }
        let answer = t0.elapsed();
        println!(
            "{:<26} {:>12} {:>10.1?} {:>12.1?} {:>10}",
            name,
            cv.heap_bytes(),
            build,
            answer,
            results
        );
    }

    println!(
        "\nThe partial strategies realize Felix's missing middle ground: \
         less space than eager, faster answers than lazy."
    );
}
