//! §3.1: the fast set intersection structure of Cohen & Porat [13] as the
//! special case `S_2^{bbf}(x1, x2, z) = R(x1, z), R(x2, z)`, plus the
//! boolean k-SetDisjointness access of §3.3.
//!
//! ```bash
//! cargo run --release --example set_intersection
//! ```

use cqc_common::heap::HeapSize;
use cqc_core::theorem1::Theorem1Structure;
use cqc_workload::{gen, queries};
use std::time::Instant;

fn main() {
    // A family of sets with Zipf-skewed membership: a few huge sets, many
    // small ones — the regime where precomputing intersections of heavy
    // pairs pays off.
    let mut rng = cqc_workload::rng(99);
    let sets = 120u64;
    let universe = 250usize;
    let memberships = 4000usize;
    let zipf = gen::Zipf::new(universe, 0.9);
    let rel = gen::zipf_pairs(&mut rng, "R", memberships, sets, &zipf);
    let n = rel.len();
    let mut db = cqc_storage::Database::new();
    db.add(rel).unwrap();
    println!("set membership relation: {n} pairs, {sets} sets\n");

    let view = queries::set_intersection().unwrap();

    // Pairs to intersect: skewed towards the big sets.
    let set_zipf = gen::Zipf::new(sets as usize, 0.8);
    let requests: Vec<[u64; 2]> = (0..500)
        .map(|_| [set_zipf.sample(&mut rng), set_zipf.sample(&mut rng)])
        .collect();

    println!(
        "{:<16} {:>12} {:>14} {:>16}",
        "τ", "space (B)", "batch time", "intersect sizes"
    );
    for tau in [4.0, 16.0, 64.0, 256.0] {
        let s = Theorem1Structure::build(&view, &db, &[1.0, 1.0], tau).unwrap();
        let t = Instant::now();
        let mut total = 0usize;
        for r in &requests {
            total += s.answer(r).unwrap().count();
        }
        let dt = t.elapsed();
        println!(
            "{:<16} {:>12} {:>12.1?} {:>16}",
            tau,
            s.heap_bytes(),
            dt,
            total
        );
    }

    // Boolean variant: k-SetDisjointness via first-answer probes (§3.3).
    let k = 3;
    let kview = queries::k_set_disjointness(k).unwrap();
    let s = Theorem1Structure::build(&kview, &db, &vec![1.0; k], 16.0).unwrap();
    println!(
        "\nk-SetDisjointness (k = {k}), α = {} (slack = k):",
        s.alpha()
    );
    for _ in 0..5 {
        let q: Vec<u64> = (0..k).map(|_| set_zipf.sample(&mut rng)).collect();
        println!("  sets {q:?} intersect? {}", s.exists(&q).unwrap());
    }
}
