//! Example 1 from the paper at scale: mutual-friend queries on a synthetic
//! social network, comparing the paper's structure against both extremes.
//!
//! ```bash
//! cargo run --release --example social_triangles
//! ```
//!
//! Prints, for each representation, its space and the time to answer a
//! batch of mutual-friend requests — the `O(N^{3/2}/τ)` space versus
//! `Õ(τ)` delay continuum of the introduction.

use cqc_common::heap::HeapSize;
use cqc_core::theorem1::Theorem1Structure;
use cqc_join::baselines::{DirectView, MaterializedView};
use cqc_workload::{graphs, queries};
use std::time::Instant;

fn main() {
    let n_nodes = 300u64;
    let n_edges = 3000usize;
    let mut rng = cqc_workload::rng(7);
    let graph = graphs::friendship_graph(&mut rng, n_nodes, n_edges, 1.0);
    let mut db = cqc_storage::Database::new();
    let n = graph.len();
    db.add(graph).unwrap();
    println!("friendship graph: {n} directed edges over {n_nodes} users\n");

    let view = queries::triangle_self("bfb").unwrap();

    // Requests: existing friend pairs (the realistic access pattern).
    let rel = db.get("R").unwrap();
    let requests: Vec<[u64; 2]> = (0..rel.len())
        .step_by(3)
        .map(|i| {
            let r = rel.row(i);
            [r[0], r[1]]
        })
        .collect();

    // Extreme 1: materialize all triangles.
    let t0 = Instant::now();
    let mat = MaterializedView::build(&view, &db).unwrap();
    let mat_build = t0.elapsed();
    // Extreme 2: evaluate per request.
    let t0 = Instant::now();
    let dir = DirectView::build(&view, &db).unwrap();
    let dir_build = t0.elapsed();

    let run_mat = || {
        let t = Instant::now();
        let mut out = 0usize;
        for r in &requests {
            out += mat.answer(r).unwrap().count();
        }
        (t.elapsed(), out)
    };
    let run_dir = || {
        let t = Instant::now();
        let mut out = 0usize;
        for r in &requests {
            out += dir.answer(r).unwrap().count();
        }
        (t.elapsed(), out)
    };
    let (mat_t, outs) = run_mat();
    let (dir_t, outs2) = run_dir();
    assert_eq!(outs, outs2);

    println!(
        "{:<28} {:>12} {:>12} {:>14}",
        "representation", "space (B)", "build", "answer batch"
    );
    println!(
        "{:<28} {:>12} {:>10.1?} {:>12.1?}",
        "materialized (extreme 1)",
        mat.heap_bytes(),
        mat_build,
        mat_t
    );
    println!(
        "{:<28} {:>12} {:>10.1?} {:>12.1?}",
        "direct (extreme 2)",
        dir.heap_bytes(),
        dir_build,
        dir_t
    );

    for tau in [2.0, 8.0, 32.0] {
        let t0 = Instant::now();
        let s = Theorem1Structure::build(&view, &db, &[0.5, 0.5, 0.5], tau).unwrap();
        let build = t0.elapsed();
        let t = Instant::now();
        let mut out = 0usize;
        for r in &requests {
            out += s.answer(r).unwrap().count();
        }
        let answer = t.elapsed();
        assert_eq!(out, outs);
        println!(
            "{:<28} {:>12} {:>10.1?} {:>12.1?}   (tree {} nodes, dict {})",
            format!("theorem 1, τ = {tau}"),
            s.heap_bytes(),
            build,
            answer,
            s.stats().tree_nodes,
            s.stats().dict_entries,
        );
    }
    println!(
        "\n{outs} mutual-friend results per batch of {} requests",
        requests.len()
    );
}
