//! Register-once / serve-many with the engine on the social-triangles
//! workload: the mutual-friends view of Example 1, served concurrently from
//! the representation catalog.
//!
//! ```bash
//! cargo run --release --example engine_serving
//! ```
//!
//! Demonstrates the subsystem the paper motivates: one compressed
//! representation, built once by auto strategy selection, amortized over a
//! large batch of access requests served across threads — with the catalog
//! proving that the request path performs zero rebuilds.

use cqc_bench::{fmt_bytes, fmt_ns, BatchStats};
use cqc_engine::{Engine, Policy, Request};
use cqc_workload::{graphs, queries, witness_requests};
use std::time::Instant;

fn main() {
    // A skewed friendship graph, as in the paper's §1 social-network pitch.
    let mut rng = cqc_workload::rng(7);
    let graph = graphs::friendship_graph(&mut rng, 500, 6000, 1.0);
    let mut db = cqc_storage::Database::new();
    db.add(graph).unwrap();
    println!("|D| = {} friendship edges over 500 users", db.size());

    let engine = Engine::new(db);

    // Register once: auto selection consults widths, the §6 LPs and the
    // cost oracle, then builds into the catalog.
    let t0 = Instant::now();
    let view = queries::triangle_self("bfb").unwrap();
    let rv = engine
        .register("mutual", view.clone(), Policy::default())
        .unwrap();
    println!(
        "registered `mutual` in {} → {} ({})",
        fmt_ns(t0.elapsed().as_nanos() as u64),
        rv.selection.tag,
        rv.selection.reason
    );
    println!("{}\n", engine.explain("mutual").unwrap());

    // Serve many: a stream of mutual-friend requests over actual edges.
    let requests: Vec<Request> = witness_requests(&mut rng, &view, &engine.db(), 5000)
        .into_iter()
        .map(|bound| Request {
            view: "mutual".into(),
            bound,
        })
        .collect();

    for threads in [1, 4] {
        let t0 = Instant::now();
        let served = engine.serve_batch(&requests, threads).unwrap();
        let wall = t0.elapsed();
        let mut batch = BatchStats::default();
        for s in &served {
            batch.add(&s.delay);
        }
        let batch = batch.finish();
        println!(
            "served {} requests on {threads} thread(s): {} ({:.0} req/s), \
             {} result tuples, max delay {}",
            served.len(),
            fmt_ns(wall.as_nanos() as u64),
            served.len() as f64 / wall.as_secs_f64(),
            batch.tuples,
            fmt_ns(batch.max_delay_ns)
        );
    }

    let stats = engine.catalog_stats();
    println!(
        "\ncatalog: {} build(s), {} hits, {} resident — the serve path rebuilt nothing",
        stats.builds,
        stats.hits,
        fmt_bytes(stats.resident_bytes)
    );
    assert_eq!(stats.builds, 1, "register-once must mean build-once");
}
