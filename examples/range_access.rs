//! Order-aware range access: because Theorem 1 enumerates in lexicographic
//! order, the structure supports "answers between `lo` and `hi`" natively —
//! only the O(log) tree nodes straddling the range boundary lose the
//! dictionary's progress guarantee.
//!
//! ```bash
//! cargo run --release --example range_access
//! ```
//!
//! The scenario: a product co-purchase graph; given two products that are
//! often bought together (bound pair), list the common co-purchases whose
//! ids fall in a catalogue segment (the range).

use cqc_core::theorem1::Theorem1Structure;
use cqc_workload::{graphs, queries};
use std::time::Instant;

fn main() {
    let mut rng = cqc_workload::rng(77);
    let graph = graphs::friendship_graph(&mut rng, 500, 4000, 0.9);
    let mut db = cqc_storage::Database::new();
    db.add(graph).unwrap();
    println!("co-purchase graph: {} edges", db.size());

    // V^bfb(x, y, z): given products (x, z), enumerate common neighbors y.
    let view = queries::triangle_self("bfb").unwrap();
    let s = Theorem1Structure::build(&view, &db, &[0.5, 0.5, 0.5], 8.0).unwrap();
    println!(
        "structure: α = {}, {} tree nodes, {} dictionary entries\n",
        s.alpha(),
        s.stats().tree_nodes,
        s.stats().dict_entries
    );

    // Pick a bound pair with a fat answer.
    let rel = db.get("R").unwrap();
    let mut best = ([0u64, 0u64], 0usize);
    for i in (0..rel.len()).step_by(11) {
        let row = rel.row(i);
        let n = s.answer(&[row[0], row[1]]).unwrap().count();
        if n > best.1 {
            best = ([row[0], row[1]], n);
        }
    }
    let (pair, total) = best;
    println!("pair {pair:?} has {total} common co-purchases");

    // Full enumeration vs three catalogue segments.
    let t = Instant::now();
    let all: Vec<u64> = s.answer(&pair).unwrap().map(|t| t[0]).collect();
    println!(
        "full enumeration: {} results in {:.1?}",
        all.len(),
        t.elapsed()
    );

    for (lo, hi) in [(0u64, 99u64), (100, 299), (300, 499)] {
        let t = Instant::now();
        let seg: Vec<u64> = s
            .answer_range(&pair, &[lo], &[hi])
            .unwrap()
            .map(|t| t[0])
            .collect();
        let dt = t.elapsed();
        // Cross-check against the client-side filter.
        let expect: Vec<u64> = all
            .iter()
            .copied()
            .filter(|&y| y >= lo && y <= hi)
            .collect();
        assert_eq!(seg, expect);
        println!(
            "segment [{lo:>3}, {hi:>3}]: {:>3} results in {dt:.1?} (verified)",
            seg.len()
        );
    }

    // Ranges also compose with the boolean probe: "is anything in this
    // segment?" without enumerating it.
    let any_high = s
        .answer_range(&pair, &[450], &[499])
        .unwrap()
        .next()
        .is_some();
    println!("\nany co-purchase with id ≥ 450? {any_high}");
}
