//! Quickstart: compress a triangle view and answer access requests.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```
//!
//! Demonstrates the full pipeline of the paper on the intro's mutual-friend
//! view `V^bfb(x, y, z) = R(x,y), R(y,z), R(z,x)`: build the compressed
//! representation at a few τ points, inspect the space/delay knobs, and
//! answer requests.

use cqc_common::heap::HeapSize;
use cqc_core::compressed::{CompressedView, Strategy};
use cqc_core::theorem1::Theorem1Structure;
use cqc_query::parser::parse_adorned;
use cqc_storage::{Database, Relation};

fn main() {
    // A small friendship graph (symmetric).
    let edges = vec![
        (1u64, 2u64),
        (2, 3),
        (3, 1),
        (1, 4),
        (4, 2),
        (3, 4),
        (4, 5),
        (5, 1),
        (5, 3),
    ];
    let mut pairs = Vec::new();
    for (a, b) in edges {
        pairs.push((a, b));
        pairs.push((b, a));
    }
    let mut db = Database::new();
    db.add(Relation::from_pairs("R", pairs)).unwrap();
    println!("database: {} tuples", db.size());

    // The adorned view: given friends (x, z), enumerate mutual friends y.
    let view = parse_adorned("V(x, y, z) :- R(x, y), R(y, z), R(z, x)", "bfb").unwrap();
    println!("view: {view}");

    // One structure per point on the space/delay tradeoff.
    for tau in [1.0, 4.0, 16.0] {
        let s = Theorem1Structure::build(&view, &db, &[0.5, 0.5, 0.5], tau).unwrap();
        let st = s.stats();
        println!(
            "τ = {tau:>4}: slack α = {:.1}, tree nodes = {}, dictionary entries = {}, heap = {} B",
            st.alpha, st.tree_nodes, st.dict_entries, st.heap_bytes
        );
    }

    // Answer requests through the unified front door.
    let cv = CompressedView::build(
        &view,
        &db,
        Strategy::Tradeoff {
            tau: 2.0,
            weights: None,
        },
    )
    .unwrap();
    println!(
        "strategy = {}, heap = {} bytes",
        cv.strategy_name(),
        cv.heap_bytes()
    );
    for (x, z) in [(1u64, 2u64), (3, 4), (2, 5)] {
        let mutuals: Vec<u64> = cv.answer(&[x, z]).unwrap().map(|t| t[0]).collect();
        println!("mutual friends of ({x}, {z}): {mutuals:?}");
    }

    // Boolean access: is there any triangle through the pair at all?
    println!("exists(1, 2) = {}", cv.exists(&[1, 2]).unwrap());
    println!("exists(5, 2) = {}", cv.exists(&[5, 2]).unwrap());
}
