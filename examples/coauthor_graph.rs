//! §1 graph analytics: serving co-author neighborhood queries from a
//! compressed view of an author–paper table, DBLP-style.
//!
//! ```bash
//! cargo run --release --example coauthor_graph
//! ```
//!
//! The co-author graph `V(x, y) = R(x, p), R(y, p)` is usually far denser
//! than the input table (hub papers create cliques). The paper's structures
//! avoid materializing it while still answering neighbor requests fast.
//! Because the PODS'18 framework covers full CQs only (§8 defers
//! projections), the compressed view keeps the witness paper `p`; the
//! neighborhood is the client-side projection of the answer stream.

use cqc_common::heap::HeapSize;
use cqc_core::compressed::{CompressedView, Strategy};
use cqc_query::parser::parse_adorned;
use cqc_storage::{Database, Interner};
use cqc_workload::graphs;
use std::time::Instant;

fn main() {
    let mut rng = cqc_workload::rng(13);
    let authors = 500u64;
    let papers = 1500u64;
    let rows = 6000usize;
    let table = graphs::author_paper(&mut rng, authors, papers, rows, 1.1);
    let input_tuples = table.len();
    let mut db = Database::new();
    db.add(table).unwrap();

    // A fake interner so the demo reads like DBLP.
    let mut names = Interner::new();
    for i in 0..authors {
        names.intern(&format!("author_{i:03}"));
    }

    let view = parse_adorned("V(x, y, p) :- R(x, p), R(y, p)", "bff").unwrap();

    println!("author-paper table: {input_tuples} rows");
    let t0 = Instant::now();
    let eager = CompressedView::build(&view, &db, Strategy::Materialize).unwrap();
    println!(
        "materialized co-author view: {} tuples-worth, {} B, built in {:.1?}",
        {
            let mut n = 0usize;
            for a in 0..authors {
                n += eager.answer(&[a]).unwrap().count();
            }
            n
        },
        eager.heap_bytes(),
        t0.elapsed()
    );

    let t0 = Instant::now();
    let compressed = CompressedView::build(
        &view,
        &db,
        Strategy::Tradeoff {
            tau: (input_tuples as f64).sqrt(),
            weights: None,
        },
    )
    .unwrap();
    println!(
        "compressed view (τ = √N):    {} B, built in {:.1?}\n",
        compressed.heap_bytes(),
        t0.elapsed()
    );

    // Neighborhood API: co-authors of an author.
    for author in [0u64, 1, 42] {
        let t = Instant::now();
        let mut coauthors: Vec<u64> = compressed
            .answer(&[author])
            .unwrap()
            .map(|t| t[0])
            .filter(|&y| y != author)
            .collect();
        coauthors.sort_unstable();
        coauthors.dedup();
        let dt = t.elapsed();
        let name = names.resolve(author).unwrap_or("?");
        let display: Vec<&str> = coauthors
            .iter()
            .take(8)
            .map(|&c| names.resolve(c).unwrap_or("?"))
            .collect();
        println!(
            "{name}: {} co-authors in {dt:.1?} — {display:?}{}",
            coauthors.len(),
            if coauthors.len() > 8 { " …" } else { "" }
        );
    }

    // Cross-check one neighborhood against the materialized extreme.
    let a: Vec<Vec<u64>> = compressed.answer(&[7]).unwrap().collect();
    let mut b: Vec<Vec<u64>> = eager.answer(&[7]).unwrap().collect();
    b.sort();
    let mut a2 = a;
    a2.sort();
    assert_eq!(a2, b, "representations must agree");
    println!("\ncompressed and materialized views agree on author_007");
}
